"""Filecule-aware data-transfer scheduling (paper §6).

"For example, scheduling data transfers while accounting for filecules
can lead to significant improvements."  This module makes that concrete
with a queue-level model of a site's inbound transfer scheduler:

* jobs arrive with their input file lists and queue for data;
* the scheduler issues transfers over one FIFO WAN link (fixed bandwidth
  plus a per-transfer setup latency — connection setup, catalog lookup,
  SRM negotiation);
* **file-at-a-time** scheduling issues one transfer per missing file per
  job, deduplicating only what is already on disk;
* **filecule-batched** scheduling coalesces each job's missing files into
  whole-filecule transfers, so (a) one setup latency covers the whole
  group and (b) *pending* requests for other members of an in-flight
  filecule piggyback instead of issuing new transfers.

Both variants deliver identical bytes; the difference is setup overhead
and cross-job redundancy — the mechanism the paper points at.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filecule import FileculePartition
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class TransferScheduleReport:
    """Outcome of scheduling one site's inbound transfers."""

    strategy: str
    n_jobs: int
    n_transfers: int
    bytes_moved: int
    setup_seconds: float
    #: per-job wait until its full input set is on disk
    mean_wait_seconds: float
    p95_wait_seconds: float
    makespan_seconds: float


def _waits_summary(waits: list[float]) -> tuple[float, float]:
    if not waits:
        return 0.0, 0.0
    arr = np.asarray(waits)
    return float(arr.mean()), float(np.quantile(arr, 0.95))


def schedule_transfers(
    trace: Trace,
    site: int,
    partition: FileculePartition | None = None,
    bandwidth_bps: float = 8 * 12.5e6,
    setup_latency_s: float = 10.0,
) -> TransferScheduleReport:
    """Schedule one site's inbound transfers.

    With ``partition=None`` this is file-at-a-time scheduling; with a
    partition, whole-filecule batching with piggybacking.  Files already
    transferred to the site are never moved again (infinite site storage
    — isolates scheduling effects from cache eviction, which Figure 10
    already covers).
    """
    if not 0 <= site < trace.n_sites:
        raise ValueError(f"site {site} out of range")
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
    if setup_latency_s < 0:
        raise ValueError(f"setup latency must be >= 0, got {setup_latency_s}")

    mask = trace.job_sites == site
    job_ids = np.flatnonzero(mask)
    on_disk = np.zeros(trace.n_files, dtype=bool)
    # unit -> completion time of its in-flight/finished transfer
    arrival_of_unit: dict[int, float] = {}
    link_free = 0.0
    waits: list[float] = []
    n_transfers = 0
    bytes_moved = 0
    setup_seconds = 0.0
    makespan = 0.0

    use_filecules = partition is not None
    labels = partition.labels if use_filecules else None
    sizes = trace.file_sizes

    for j in job_ids:
        files = trace.job_files(int(j))
        if len(files) == 0:
            continue
        t_submit = float(trace.job_starts[j])
        link_free = max(link_free, t_submit)
        ready = t_submit
        if use_filecules:
            needed_units = {
                int(labels[f]) for f in files if not on_disk[f]
            }
            for unit in sorted(needed_units):
                if unit in arrival_of_unit:
                    # piggyback on the in-flight/finished transfer
                    ready = max(ready, arrival_of_unit[unit])
                    continue
                members = partition[unit].file_ids
                volume = int(sizes[members].sum())
                start = max(link_free, t_submit)
                done = start + setup_latency_s + volume / bandwidth_bps
                link_free = done
                arrival_of_unit[unit] = done
                on_disk[members] = True
                n_transfers += 1
                bytes_moved += volume
                setup_seconds += setup_latency_s
                ready = max(ready, done)
        else:
            for f in files:
                f = int(f)
                if on_disk[f]:
                    ready = max(ready, arrival_of_unit.get(f, t_submit))
                    continue
                volume = int(sizes[f])
                start = max(link_free, t_submit)
                done = start + setup_latency_s + volume / bandwidth_bps
                link_free = done
                arrival_of_unit[f] = done
                on_disk[f] = True
                n_transfers += 1
                bytes_moved += volume
                setup_seconds += setup_latency_s
                ready = max(ready, done)
        waits.append(ready - t_submit)
        makespan = max(makespan, ready)

    mean_wait, p95_wait = _waits_summary(waits)
    return TransferScheduleReport(
        strategy="filecule-batched" if use_filecules else "file-at-a-time",
        n_jobs=len(waits),
        n_transfers=n_transfers,
        bytes_moved=bytes_moved,
        setup_seconds=setup_seconds,
        mean_wait_seconds=mean_wait,
        p95_wait_seconds=p95_wait,
        makespan_seconds=makespan,
    )


def compare_scheduling(
    trace: Trace,
    partition: FileculePartition,
    site: int,
    bandwidth_bps: float = 8 * 12.5e6,
    setup_latency_s: float = 10.0,
) -> tuple[TransferScheduleReport, TransferScheduleReport]:
    """(file-at-a-time, filecule-batched) reports for one site."""
    file_report = schedule_transfers(
        trace,
        site,
        partition=None,
        bandwidth_bps=bandwidth_bps,
        setup_latency_s=setup_latency_s,
    )
    cule_report = schedule_transfers(
        trace,
        site,
        partition=partition,
        bandwidth_bps=bandwidth_bps,
        setup_latency_s=setup_latency_s,
    )
    return file_report, cule_report
