"""Data-transfer analyses: access intervals, concurrency, swarm transfers.

Section 5 of the paper asks whether BitTorrent-style swarming would help
DZero: "are there enough users who simultaneously use/request the same
data?"  The paper answers by plotting, for a popular filecule, the time
interval between first and last request per site (Figure 11) and per user
(Figure 12) and observing that simultaneous access is rare.

This package computes those interval charts
(:mod:`repro.transfer.intervals`), quantifies overlap with a sweep-line
concurrency profile (:mod:`repro.transfer.concurrency`), and goes one step
beyond the paper with an explicit fluid-model swarm simulator
(:mod:`repro.transfer.bittorrent`) that prices the actual benefit of
swarming vs client-server under the observed arrival pattern.

:mod:`repro.transfer.links` adds the inter-tier link models
(:class:`LinkModel`, bandwidth + per-transfer setup) that price a cache
hierarchy's refill traffic — see :mod:`repro.hierarchy`.
"""

from repro.transfer.links import (
    LINK_PRESETS,
    LinkModel,
    default_tier_links,
)
from repro.transfer.intervals import (
    AccessInterval,
    filecule_access_times,
    job_duration_intervals,
    site_intervals,
    user_intervals,
    select_hot_filecule,
)
from repro.transfer.concurrency import (
    ConcurrencyProfile,
    concurrency_profile,
)
from repro.transfer.bittorrent import (
    SwarmConfig,
    TransferResult,
    simulate_swarm,
    simulate_client_server,
)
from repro.transfer.comparison import (
    FeasibilityRow,
    bittorrent_feasibility,
)
from repro.transfer.scheduling import (
    TransferScheduleReport,
    compare_scheduling,
    schedule_transfers,
)

__all__ = [
    "LINK_PRESETS",
    "LinkModel",
    "default_tier_links",
    "AccessInterval",
    "filecule_access_times",
    "job_duration_intervals",
    "site_intervals",
    "user_intervals",
    "select_hot_filecule",
    "ConcurrencyProfile",
    "concurrency_profile",
    "SwarmConfig",
    "TransferResult",
    "simulate_swarm",
    "simulate_client_server",
    "FeasibilityRow",
    "bittorrent_feasibility",
    "TransferScheduleReport",
    "compare_scheduling",
    "schedule_transfers",
]
