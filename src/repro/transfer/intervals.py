"""Per-site and per-user access intervals for a filecule (Figures 11–12).

"Each horizontal line corresponds to the interval between the first and
the last request for the filecule considered submitted per site" (§5).
The same analysis is repeated per user for Figure 12.  The paper notes
the optimistic assumption baked into these charts: data is assumed to
stay stored at the site/user for the whole interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filecule import Filecule, FileculePartition
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class AccessInterval:
    """One Gantt row: a group's first-to-last request span for a filecule."""

    label: str
    group_id: int
    start: float
    end: float
    n_jobs: int
    n_users: int

    @property
    def duration(self) -> float:
        return self.end - self.start


def filecule_access_times(trace: Trace, filecule: Filecule) -> np.ndarray:
    """Start times of all jobs that request the filecule (sorted)."""
    jobs = trace.file_jobs(int(filecule.file_ids[0]))
    return np.sort(trace.job_starts[jobs])


def _intervals_by(
    trace: Trace,
    filecule: Filecule,
    group_codes: np.ndarray,
    names: tuple[str, ...] | list[str],
) -> list[AccessInterval]:
    jobs = trace.file_jobs(int(filecule.file_ids[0]))
    if len(jobs) == 0:
        return []
    groups = group_codes[jobs]
    starts = trace.job_starts[jobs]
    users = trace.job_users[jobs]
    rows: list[AccessInterval] = []
    for g in np.unique(groups):
        mask = groups == g
        rows.append(
            AccessInterval(
                label=str(names[int(g)]),
                group_id=int(g),
                start=float(starts[mask].min()),
                end=float(starts[mask].max()),
                n_jobs=int(mask.sum()),
                n_users=int(len(np.unique(users[mask]))),
            )
        )
    rows.sort(key=lambda r: r.start)
    return rows


def job_duration_intervals(
    trace: Trace, filecule: Filecule
) -> list[tuple[float, float]]:
    """(start, end) wall-time interval of every job using the filecule.

    Unlike the first-to-last-request spans of Figures 11–12 (which assume
    data is retained between uses), these are the periods a job is
    actually *running* against the data — the concurrency that matters
    for an on-line transfer protocol.
    """
    jobs = trace.file_jobs(int(filecule.file_ids[0]))
    return [
        (float(trace.job_starts[j]), float(trace.job_ends[j])) for j in jobs
    ]


def site_intervals(trace: Trace, filecule: Filecule) -> list[AccessInterval]:
    """First-to-last request interval per submission site (Figure 11).

    The paper treats a site as one entity because users of one institution
    share local storage.
    """
    return _intervals_by(trace, filecule, trace.job_sites, trace.site_names)


def user_intervals(trace: Trace, filecule: Filecule) -> list[AccessInterval]:
    """First-to-last request interval per user (Figure 12)."""
    user_names = [f"user{u}" for u in range(trace.n_users)]
    return _intervals_by(trace, filecule, trace.job_users, user_names)


def select_hot_filecule(
    trace: Trace,
    partition: FileculePartition,
    min_requests: int = 2,
) -> Filecule:
    """Pick the filecule with the largest user population.

    This mirrors the paper's §5 selection ("we focus on a small set of
    filecules with larger numbers of users ... accessed by 42 users from 6
    sites in 634 jobs"), preferring higher request counts on ties.
    """
    if len(partition) == 0:
        raise ValueError("partition has no filecules")
    users = partition.users_per_filecule(trace)
    requests = partition.requests
    eligible = np.flatnonzero(requests >= min_requests)
    if len(eligible) == 0:
        eligible = np.arange(len(partition))
    best = eligible[np.lexsort((-requests[eligible], -users[eligible]))[0]]
    return partition[int(best)]
