"""Sweep-line concurrency over access intervals.

Quantifies what Figures 11–12 show visually: how many sites/users hold (or
could serve) the filecule at any instant.  The paper's conclusion — "the
small number of simultaneous accesses to data does not plead for using
BitTorrent" — becomes a number here: ``max_concurrency`` and the
time-weighted mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.transfer.intervals import AccessInterval


@dataclass(frozen=True, slots=True)
class ConcurrencyProfile:
    """Piecewise-constant count of simultaneously active intervals.

    ``times`` are breakpoints; ``counts[i]`` is the number of positive-
    length intervals covering ``[times[i], times[i+1])`` and carries the
    time weight of that segment.  ``peaks[i]`` additionally includes
    zero-length (single-request) intervals located exactly at
    ``times[i]`` — they show up in :attr:`max_concurrency` but get no
    time weight.
    """

    times: np.ndarray
    counts: np.ndarray
    peaks: np.ndarray

    @property
    def max_concurrency(self) -> int:
        """Peak number of simultaneously active holders."""
        return int(self.peaks.max()) if len(self.peaks) else 0

    @property
    def mean_concurrency(self) -> float:
        """Time-weighted mean count over the profile's span."""
        if len(self.counts) == 0:
            return 0.0
        spans = np.diff(self.times)
        total = spans.sum()
        if total <= 0:
            return float(self.peaks.max())
        return float((self.counts[:-1] * spans).sum() / total)

    def fraction_at_least(self, k: int) -> float:
        """Fraction of time with at least ``k`` concurrent holders."""
        if len(self.counts) == 0:
            return 0.0
        spans = np.diff(self.times)
        total = spans.sum()
        if total <= 0:
            return 1.0 if self.peaks.max() >= k else 0.0
        return float(spans[self.counts[:-1] >= k].sum() / total)


def concurrency_profile(
    intervals: Sequence[AccessInterval] | Sequence[tuple[float, float]],
) -> ConcurrencyProfile:
    """Build the overlap profile of a set of closed intervals.

    Accepts :class:`AccessInterval` rows or plain (start, end) tuples.
    Zero-length intervals (a single request) register an instant of
    presence in ``peaks``/``max_concurrency`` but never accrue time
    weight in the mean.
    """
    pairs: list[tuple[float, float]] = []
    for item in intervals:
        if isinstance(item, AccessInterval):
            pairs.append((item.start, item.end))
        else:
            start, end = item
            if end < start:
                raise ValueError(f"interval end {end} precedes start {start}")
            pairs.append((float(start), float(end)))
    if not pairs:
        empty = np.zeros(0)
        zero = np.zeros(0, dtype=np.int64)
        return ConcurrencyProfile(times=empty, counts=zero, peaks=zero)

    starts = np.array([p[0] for p in pairs])
    ends = np.array([p[1] for p in pairs])
    times = np.unique(np.concatenate([starts, ends]))
    left = np.searchsorted(times, starts, side="left")
    right = np.searchsorted(times, ends, side="left")
    point = right == left

    # time-weighted coverage from positive-length intervals only
    delta = np.zeros(len(times) + 1, dtype=np.int64)
    np.add.at(delta, left[~point], 1)
    np.add.at(delta, right[~point], -1)
    counts = np.cumsum(delta[:-1])

    peaks = counts.copy()
    np.add.at(peaks, left[point], 1)
    return ConcurrencyProfile(times=times, counts=counts, peaks=peaks)
