"""BitTorrent feasibility assessment over the hottest filecules (§5).

For each of the most-shared filecules, measure the observed concurrency
of its request stream and simulate both transfer models under the real
arrival times.  The ``speedup`` column (client-server mean download time /
swarm mean download time) is the quantified version of the paper's
conclusion: values near 1.0 mean swarming buys nothing at this
concurrency level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filecule import FileculePartition
from repro.traces.trace import Trace
from repro.transfer.bittorrent import (
    SwarmConfig,
    simulate_client_server,
    simulate_swarm,
)
from repro.transfer.concurrency import concurrency_profile
from repro.transfer.intervals import (
    filecule_access_times,
    site_intervals,
    user_intervals,
)


@dataclass(frozen=True, slots=True)
class FeasibilityRow:
    """Feasibility verdict for one filecule."""

    filecule_id: int
    n_files: int
    size_bytes: int
    n_jobs: int
    n_users: int
    n_sites: int
    max_concurrent_users: int
    mean_concurrent_users: float
    cs_mean_seconds: float
    swarm_mean_seconds: float

    @property
    def speedup(self) -> float:
        """Client-server time / swarm time (≈ 1 ⇒ BitTorrent not useful)."""
        if self.swarm_mean_seconds <= 0:
            return 1.0
        return self.cs_mean_seconds / self.swarm_mean_seconds


def bittorrent_feasibility(
    trace: Trace,
    partition: FileculePartition,
    top_k: int = 5,
    config: SwarmConfig | None = None,
) -> list[FeasibilityRow]:
    """Assess swarming for the ``top_k`` most user-shared filecules."""
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    config = config or SwarmConfig()
    users = partition.users_per_filecule(trace)
    order = np.lexsort((-partition.requests, -users))
    rows: list[FeasibilityRow] = []
    for idx in order[:top_k]:
        fc = partition[int(idx)]
        arrivals = filecule_access_times(trace, fc)
        u_iv = user_intervals(trace, fc)
        s_iv = site_intervals(trace, fc)
        profile = concurrency_profile(u_iv)
        cs = simulate_client_server(arrivals, fc.size_bytes, config)
        sw = simulate_swarm(arrivals, fc.size_bytes, config)
        rows.append(
            FeasibilityRow(
                filecule_id=fc.filecule_id,
                n_files=fc.n_files,
                size_bytes=fc.size_bytes,
                n_jobs=len(arrivals),
                n_users=int(users[idx]),
                n_sites=len(s_iv),
                max_concurrent_users=profile.max_concurrency,
                mean_concurrent_users=profile.mean_concurrency,
                cs_mean_seconds=cs.mean_download_time,
                swarm_mean_seconds=sw.mean_download_time,
            )
        )
    return rows
