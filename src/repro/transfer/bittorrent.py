"""Fluid-model swarm (BitTorrent-style) vs client-server transfer.

The paper stops at interval analysis; this module quantifies the same
question.  Peers arrive at given times, each needing the full object
(filecule) of ``size_bytes``.  Two service models:

* **client-server** — a single source of upload capacity ``seed_up_bps``
  shared equally among active downloaders (processor sharing);
* **swarm** — additionally, every active downloader contributes its own
  upload capacity ``peer_up_bps`` (the fluid approximation of BitTorrent
  chunk exchange: with enough chunk diversity, aggregate upload is the
  bound).  Per-peer rate stays capped at ``peer_down_bps``.

Both are simulated exactly as piecewise-constant-rate systems: between
consecutive events (arrival or completion) rates are constant, so the
next completion time is available in closed form.  With low concurrency —
the DZero regime — the swarm's extra upload capacity is idle and the two
models coincide, which is precisely the paper's conclusion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence


@dataclass(frozen=True, slots=True)
class SwarmConfig:
    """Capacity model for the transfer simulations.

    Defaults approximate a mid-2000s lab: a well-provisioned central
    server (1 Gb/s), peers on 100 Mb/s campus links.
    """

    seed_up_bps: float = 1e9 / 8
    peer_up_bps: float = 100e6 / 8
    peer_down_bps: float = 100e6 / 8

    def __post_init__(self) -> None:
        if self.seed_up_bps <= 0 or self.peer_down_bps <= 0:
            raise ValueError("seed upload and peer download must be positive")
        if self.peer_up_bps < 0:
            raise ValueError("peer upload must be non-negative")


@dataclass(frozen=True, slots=True)
class TransferResult:
    """Per-peer completion outcome of one simulation."""

    arrival_times: tuple[float, ...]
    completion_times: tuple[float, ...]

    @property
    def download_times(self) -> tuple[float, ...]:
        return tuple(
            c - a for a, c in zip(self.arrival_times, self.completion_times)
        )

    @property
    def mean_download_time(self) -> float:
        times = self.download_times
        return sum(times) / len(times) if times else 0.0

    @property
    def max_download_time(self) -> float:
        times = self.download_times
        return max(times) if times else 0.0

    @property
    def makespan(self) -> float:
        if not self.completion_times:
            return 0.0
        return max(self.completion_times) - min(self.arrival_times)


def _simulate(
    arrival_times: Sequence[float],
    size_bytes: float,
    config: SwarmConfig,
    peers_upload: bool,
) -> TransferResult:
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    arrivals = sorted(
        (float(t), i) for i, t in enumerate(arrival_times)
    )
    n = len(arrivals)
    completions = [math.nan] * n
    if n == 0 or size_bytes == 0:
        return TransferResult(
            tuple(float(t) for t in arrival_times),
            tuple(float(t) for t in arrival_times),
        )

    remaining: dict[int, float] = {}
    # Tolerance relative to the object size: byte-level float noise from
    # repeated rate*elapsed subtractions must never strand a peer at an
    # epsilon of remaining work (that stalls event time below timestamp
    # resolution and the loop would never advance).
    eps = max(1e-9, 1e-9 * float(size_bytes))
    now = arrivals[0][0]
    next_arrival = 0
    while remaining or next_arrival < n:
        # admit all arrivals due now
        if not remaining:
            now = max(now, arrivals[next_arrival][0])
        while next_arrival < n and arrivals[next_arrival][0] <= now:
            remaining[arrivals[next_arrival][1]] = float(size_bytes)
            next_arrival += 1

        k = len(remaining)
        supply = config.seed_up_bps
        if peers_upload:
            supply += k * config.peer_up_bps
        rate = min(config.peer_down_bps, supply / k)

        # next event: earliest completion vs next arrival
        min_left = min(remaining.values())
        t_complete = now + min_left / rate
        t_next = arrivals[next_arrival][0] if next_arrival < n else math.inf

        if t_next < t_complete:
            # arrival happens first: drain work, admit on next iteration
            elapsed = t_next - now
            for pid in remaining:
                remaining[pid] -= rate * elapsed
            now = t_next
        else:
            # completion event: everyone tied with the minimum finishes;
            # membership decided on pre-subtraction values so float noise
            # cannot strand an almost-done peer
            done = [
                pid for pid in remaining if remaining[pid] <= min_left + eps
            ]
            elapsed = t_complete - now
            for pid in list(remaining):
                remaining[pid] -= rate * elapsed
            for pid in done:
                del remaining[pid]
                completions[pid] = t_complete
            now = t_complete

    return TransferResult(
        tuple(float(t) for t in arrival_times), tuple(completions)
    )


def simulate_swarm(
    arrival_times: Sequence[float],
    size_bytes: float,
    config: SwarmConfig | None = None,
) -> TransferResult:
    """Fluid BitTorrent: active peers add their upload to the supply."""
    return _simulate(arrival_times, size_bytes, config or SwarmConfig(), True)


def simulate_client_server(
    arrival_times: Sequence[float],
    size_bytes: float,
    config: SwarmConfig | None = None,
) -> TransferResult:
    """Single-source processor sharing (no peer-to-peer exchange)."""
    return _simulate(arrival_times, size_bytes, config or SwarmConfig(), False)
