"""Inter-tier network link models for the cache hierarchy.

The ESnet XRootD studies (arXiv 2205.05598, arXiv 2307.11069) describe
the topology :mod:`repro.hierarchy` replays — site cache, regional
in-network cache, origin — and the links between its tiers differ by
orders of magnitude: a site cache refills over the campus/metro network,
a regional cache refills over the wide-area path back to the origin.
:class:`LinkModel` prices a tier's refill traffic on such a link with
the standard first-order model::

    seconds = setup·transfers + bytes · 8 / bandwidth

(one latency charge per transfer plus serialization time), the same
shape as :mod:`repro.transfer.scheduling`'s per-transfer cost.  The
presets below are round numbers in the regime those studies report —
10/100 Gbps class paths with millisecond-to-continental RTTs — not
measurements; experiments that care pass their own models.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LinkModel",
    "LINK_PRESETS",
    "default_tier_links",
]


@dataclass(frozen=True, slots=True)
class LinkModel:
    """A point-to-point link: sustained bandwidth plus per-transfer setup.

    ``bandwidth_bps`` is in *bits* per second; ``setup_s`` charges RTT/
    handshake per transfer (a miss-driven fetch counts as one transfer).
    """

    name: str
    bandwidth_bps: float
    setup_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth_bps}"
            )
        if self.setup_s < 0:
            raise ValueError(f"setup must be >= 0, got {self.setup_s}")

    def transfer_seconds(self, n_bytes: int, transfers: int = 1) -> float:
        """Time to move ``n_bytes`` as ``transfers`` separate fetches."""
        if n_bytes < 0:
            raise ValueError(f"bytes must be >= 0, got {n_bytes}")
        return self.setup_s * max(0, transfers) + (
            n_bytes * 8.0 / self.bandwidth_bps
        )


#: Named link classes for the three hierarchy hops.  ``lan``: the
#: campus network in front of a site cache; ``regional``: the backbone
#: path between a site and its regional in-network cache; ``wan``: the
#: long-haul path from the regional cache back to the origin.
LINK_PRESETS: dict[str, LinkModel] = {
    "lan": LinkModel("lan", bandwidth_bps=100e9, setup_s=0.0005),
    "regional": LinkModel("regional", bandwidth_bps=10e9, setup_s=0.015),
    "wan": LinkModel("wan", bandwidth_bps=1e9, setup_s=0.120),
}


def default_tier_links(tier_names) -> dict[str, LinkModel]:
    """Assign link presets to caching tiers by position.

    ``tier_names`` lists the caching tiers outermost-first.  A tier's
    link is the path it *refills over*: the innermost tier pulls from
    the origin (``wan``), the tier above it from the regional cache
    (``regional``), anything further out is a local hop (``lan``).
    """
    names = list(tier_names)
    links: dict[str, LinkModel] = {}
    for depth_from_origin, name in enumerate(reversed(names)):
        if depth_from_origin == 0:
            preset = "wan"
        elif depth_from_origin == 1:
            preset = "regional"
        else:
            preset = "lan"
        links[name] = LINK_PRESETS[preset]
    return links
