"""repro — a full reproduction of *Filecules in High-Energy Physics:
Characteristics and Impact on Resource Management* (HPDC 2006).

The package provides:

* :mod:`repro.traces` — SAM-style trace schema, I/O, filters, statistics;
* :mod:`repro.workload` — calibrated synthetic DZero workload generator
  (substitute for the proprietary SAM history traces);
* :mod:`repro.core` — the filecule abstraction: exact, incremental and
  partial-knowledge identification, invariants, dynamics;
* :mod:`repro.cache` — trace-driven cache simulation (file-LRU vs
  filecule-LRU and related-work baselines);
* :mod:`repro.sam` — discrete-event grid substrate (stations, catalog,
  tape/network transfer costs);
* :mod:`repro.transfer` — access-interval concurrency analysis and a
  BitTorrent-style swarm model;
* :mod:`repro.replication` — filecule-aware proactive replication;
* :mod:`repro.analysis` — histograms, popularity/Zipf fitting, reports;
* :mod:`repro.service` — online data-management daemon: live filecule
  identification, cache-advice queries, snapshot/restore, load generator;
* :mod:`repro.experiments` — one runnable module per paper table/figure.

Quickstart::

    from repro import default_config, generate_trace, find_filecules
    trace = generate_trace(default_config(), seed=42)
    filecules = find_filecules(trace)
    print(len(filecules), "filecules over", trace.n_files, "files")
"""

from repro.traces import Trace
from repro.workload import (
    WorkloadConfig,
    default_config,
    generate_trace,
    paper_config,
    small_config,
    tiny_config,
)
from repro.core import (
    Filecule,
    FileculePartition,
    IncrementalFileculeIdentifier,
    find_filecules,
)

__version__ = "1.6.0"

__all__ = [
    "Trace",
    "WorkloadConfig",
    "default_config",
    "paper_config",
    "small_config",
    "tiny_config",
    "generate_trace",
    "Filecule",
    "FileculePartition",
    "IncrementalFileculeIdentifier",
    "find_filecules",
    "__version__",
]
