"""Online filecule identification by streaming partition refinement.

The paper (§6) notes that deployed data-management services cannot rely on
an offline pass over the full history: filecules must be identified
"adaptively and dynamically" as job submissions stream in.  This module
provides that: an :class:`IncrementalFileculeIdentifier` maintains the
exact filecule partition of the jobs observed *so far* and refines it in
time proportional to each job's input size.

Algorithm: classic partition refinement.  All files seen so far live in
classes; when a job arrives with input set ``S``, every class ``C`` is
split into ``C ∩ S`` (touched) and ``C \\ S`` (untouched) if both parts are
non-empty.  Brand-new files form one fresh class (they share the signature
"this job only" until a later job separates them).  An inductive argument
shows the maintained partition always equals signature grouping over the
observed prefix, which is asserted against :func:`find_filecules` in the
test suite.

Classes only ever split, never merge — the monotonicity that underlies the
paper's observation that partial knowledge yields *coarser* filecules.

**Decayed co-access** (``half_life``): the stationary algorithm treats a
co-access observed two years ago exactly like one observed two minutes
ago, which makes filecules *stale* under the drifting/bursting workloads
of :mod:`repro.scenario` — a flash crowd welds files into one class that
then never comes apart.  With a finite ``half_life`` each class carries a
half-life-weighted co-access weight (+1 per touching job, halved every
``half_life`` time units); when a multi-member class's weight decays
below ``stale_threshold`` it is *dissolved* into singleton classes, so
files must re-earn their grouping from fresh traffic.  Dissolution is
still a split (each singleton is a refinement of the old class), so the
split-only monotonicity — and the service layer's exact cache
invalidation built on it — is preserved.  At the default
``half_life=inf`` nothing decays and the identifier's behavior *and*
serialized state are bit-identical to the undecayed algorithm.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable

import numpy as np

from repro.core.filecule import Filecule, FileculePartition
from repro.traces.trace import Trace


class IncrementalFileculeIdentifier:
    """Maintains the filecule partition of a growing job stream.

    Parameters
    ----------
    half_life:
        Time units after which a class's co-access weight halves.  The
        unit is whatever ``observe_job``'s ``now`` is measured in — job
        ticks when ``now`` is omitted, trace seconds under
        :meth:`observe_trace`.  ``inf`` (default) disables decay.
    stale_threshold:
        A multi-member class whose decayed weight falls below this is
        dissolved into singletons.  Must be positive; every touch sets
        the weight to at least 1, so thresholds below 1 give each class
        at least one half-life of grace after its last request.

    Example
    -------
    >>> ident = IncrementalFileculeIdentifier()
    >>> sorted(ident.observe_job([1, 2, 3]))  # class 0 created
    [0]
    >>> sorted(ident.observe_job([2, 3]))  # class 0 split -> 0 and 1
    [0, 1]
    >>> sorted(tuple(c) for c in ident.classes())
    [(1,), (2, 3)]
    """

    def __init__(
        self,
        half_life: float = math.inf,
        stale_threshold: float = 0.5,
    ) -> None:
        if not half_life > 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        if not stale_threshold > 0:
            raise ValueError(
                f"stale_threshold must be positive, got {stale_threshold}"
            )
        self.half_life = float(half_life)
        self.stale_threshold = float(stale_threshold)
        # class id -> set of member file ids (only current classes present)
        self._members: dict[int, set[int]] = {}
        # file id -> class id
        self._class_of: dict[int, int] = {}
        # class id -> number of jobs that accessed the class
        self._requests: dict[int, int] = {}
        self._next_class = 0
        self._n_jobs = 0
        # Decay bookkeeping (inert at half_life=inf): per-class decayed
        # co-access weight as of the class's last touch time, the clock's
        # high-water mark, and a lazy min-heap of (deadline, class id)
        # dissolution candidates.  Heap entries may be stale (class gone,
        # reduced to a singleton, or re-touched since the push); they are
        # re-validated against the live weight when popped.
        self._weight: dict[int, float] = {}
        self._last: dict[int, float] = {}
        self._time = 0.0
        self._expiry: list[tuple[float, int]] = []
        # Lazy numpy mirror of _class_of (file id -> class id, -1 unseen)
        # backing the vectorized batch kernel.  Built on the first
        # observe_jobs_batch call and kept current by _fresh_class from
        # then on; purely sequential users never pay for it.
        self._class_arr: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n_jobs_observed(self) -> int:
        return self._n_jobs

    @property
    def n_files_observed(self) -> int:
        return len(self._class_of)

    @property
    def n_classes(self) -> int:
        return len(self._members)

    def class_of(self, file_id: int) -> int | None:
        """Current class id of ``file_id`` (None if never observed)."""
        return self._class_of.get(int(file_id))

    def classes(self) -> list[frozenset[int]]:
        """The current partition as a list of frozen member sets."""
        return [frozenset(m) for m in self._members.values()]

    def class_ids(self) -> list[int]:
        """Ids of the current classes (ascending; stable under queries)."""
        return sorted(self._members)

    def members_of_class(self, class_id: int) -> frozenset[int]:
        """Member file ids of one current class."""
        return frozenset(self._members[class_id])

    def requests_of_class(self, class_id: int) -> int:
        """How many observed jobs accessed the given class."""
        return self._requests[class_id]

    # ------------------------------------------------------------------
    def _fresh_class(
        self,
        members: set[int],
        requests: int,
        weight: float = 1.0,
        last: float = 0.0,
    ) -> int:
        cid = self._next_class
        self._next_class += 1
        self._members[cid] = members
        self._requests[cid] = requests
        # dict.fromkeys + update walk the members at C speed.
        self._class_of.update(dict.fromkeys(members, cid))
        self._weight[cid] = weight
        self._last[cid] = last
        arr = self._class_arr
        if arr is not None:
            # _fresh_class is the only place file->class assignments
            # change (splits move files *into* fresh classes; the files
            # left behind keep their id), so updating the mirror here
            # keeps it exact.
            if len(members) == 1:
                f = next(iter(members))
                if f >= arr.size:
                    arr = self._grow_class_arr(f + 1)
                if f >= 0:
                    arr[f] = cid
                else:
                    self._class_arr = None  # negative id: drop the mirror
            else:
                idx = np.fromiter(members, dtype=np.int64, count=len(members))
                hi = int(idx.max())
                if hi >= arr.size:
                    arr = self._grow_class_arr(hi + 1)
                if int(idx.min()) >= 0:
                    arr[idx] = cid
                else:
                    self._class_arr = None
        return cid

    def _grow_class_arr(self, n: int) -> np.ndarray:
        """Return the class mirror, grown to cover file ids below ``n``."""
        arr = self._class_arr
        if arr is None:
            size = max(n, 1024)
            arr = np.full(size, -1, dtype=np.int64)
            class_of = self._class_of
            if class_of:
                ids = np.fromiter(
                    class_of.keys(), dtype=np.int64, count=len(class_of)
                )
                if int(ids.min()) < 0:
                    raise ValueError(
                        "batch kernel requires non-negative file ids"
                    )
                hi = int(ids.max())
                if hi >= arr.size:
                    arr = np.full(hi + 1024, -1, dtype=np.int64)
                arr[ids] = np.fromiter(
                    class_of.values(), dtype=np.int64, count=len(class_of)
                )
            self._class_arr = arr
        elif n > arr.size:
            grown = np.full(max(n, 2 * arr.size), -1, dtype=np.int64)
            grown[: arr.size] = arr
            arr = self._class_arr = grown
        return arr

    def _decayed_weight(self, cid: int, now: float) -> float:
        """The class's co-access weight decayed forward to ``now``."""
        if self.half_life == math.inf:
            return self._weight[cid]
        dt = now - self._last[cid]
        if dt <= 0.0:
            return self._weight[cid]
        return self._weight[cid] * 2.0 ** (-dt / self.half_life)

    def _push_expiry(self, cid: int) -> None:
        """Schedule the (multi-member) class's dissolution deadline."""
        if self.half_life == math.inf or len(self._members[cid]) <= 1:
            return
        weight = self._weight[cid]
        if weight <= self.stale_threshold:
            deadline = self._last[cid]
        else:
            deadline = self._last[cid] + self.half_life * math.log2(
                weight / self.stale_threshold
            )
        heapq.heappush(self._expiry, (deadline, cid))

    def _expire(self, now: float) -> set[int]:
        """Dissolve every multi-member class gone stale by ``now``.

        Each stale class splits into singleton classes (fresh ids in
        ascending member order), which inherit its request count and its
        decayed weight.  Returns the affected ids — the dissolved class
        and its singletons — so callers can fold them into the
        ``observe_job`` invalidation set.  Stale classes are collected
        first and processed in ascending class-id order, so the fresh ids
        assigned do not depend on heap history — a restored identifier
        dissolves identically to an uninterrupted one.
        """
        expiry = self._expiry
        due: set[int] = set()
        while expiry and expiry[0][0] <= now:
            deadline, cid = heapq.heappop(expiry)
            if cid in due:
                continue  # duplicate entry for an already-collected class
            members = self._members.get(cid)
            if members is None or len(members) <= 1:
                continue  # stale entry: class dissolved, split away, ...
            if self._decayed_weight(cid, now) > self.stale_threshold:
                # Re-touched since the push: reschedule at the true
                # deadline — but only if that makes strict progress.  A
                # weight sitting exactly on the threshold (e.g. exactly
                # one touch popped exactly one half-life later) would
                # otherwise reschedule to this same instant forever.
                new_deadline = self._last[cid] + self.half_life * math.log2(
                    self._weight[cid] / self.stale_threshold
                )
                if new_deadline > now:
                    heapq.heappush(expiry, (new_deadline, cid))
                    continue
            due.add(cid)
        affected: set[int] = set()
        for cid in sorted(due):
            members = self._members.pop(cid)
            requests = self._requests.pop(cid)
            weight = self._decayed_weight(cid, now)
            del self._weight[cid], self._last[cid]
            affected.add(cid)
            for f in sorted(members):
                affected.add(
                    self._fresh_class(
                        {f}, requests=requests, weight=weight, last=now
                    )
                )
        return affected

    def observe_job(
        self, file_ids: Iterable[int], now: float | None = None
    ) -> set[int]:
        """Refine the partition with one job's input set.

        ``now`` is the job's timestamp on the decay clock (defaults to a
        logical per-call tick; ignored at ``half_life=inf``).  The clock
        is clamped monotonic, so replaying out-of-order timestamps never
        *un*-decays a class.

        Returns the ids of every class the job affected — freshly created
        classes, both halves of a split, whole classes whose request
        count advanced, and (under decay) stale classes dissolved before
        this job was applied plus their singleton successors.  Callers
        that memoize per-class derived data (the service's lookup fast
        path) invalidate exactly these entries.
        """
        # map(int, ...) normalizes numpy integers from direct callers (so
        # keys hash/serialize as plain ints) without per-element bytecode.
        request = set(map(int, file_ids))
        self._n_jobs += 1
        now = float(self._n_jobs) if now is None else float(now)
        if now > self._time:
            self._time = now
        else:
            now = self._time
        affected = self._expire(now) if self._expiry else set()
        if request:
            self._apply_request(request, now, affected)
        return affected

    def _apply_request(
        self, request: set[int], now: float, affected: set[int]
    ) -> None:
        """Refine the partition with one (non-empty) request set.

        The exact sequential core shared by :meth:`observe_job` and the
        batch kernel's fallback path.  Consumes ``request`` (it is
        mutated) and folds the affected class ids into ``affected``.
        Split fresh-class ids depend on the iteration order of
        ``request``, so callers must build it the same way
        ``observe_job`` does (``set(map(int, <ids in wire order>))``)
        for bit-identical results.
        """
        class_of = self._class_of
        # set.difference(dict) takes CPython's dict fast path: iterate
        # the (small) request, probe the dict.  `request - keys_view`
        # instead walks the WHOLE view — O(files observed) per job, the
        # quadratic that made paper-scale ingest minutes, not seconds.
        new_files = request.difference(class_of)
        if new_files:
            # Unseen files share the signature {this job} so far.
            cid = self._fresh_class(new_files, requests=1, weight=1.0, last=now)
            affected.add(cid)
            self._push_expiry(cid)
            request -= new_files

        # Group the remaining (known) files by their current class.
        touched: dict[int, set[int]] = {}
        for f in request:
            touched.setdefault(class_of[f], set()).add(f)

        for cid, touched_files in touched.items():
            affected.add(cid)
            current = self._members[cid]
            if len(touched_files) == len(current):
                # whole class requested: signature extends uniformly
                self._requests[cid] += 1
                self._weight[cid] = self._decayed_weight(cid, now) + 1.0
                self._last[cid] = now
                self._push_expiry(cid)
            else:
                # split: touched part gains this job in its signature
                weight = self._decayed_weight(cid, now) + 1.0
                current -= touched_files
                new_cid = self._fresh_class(
                    touched_files,
                    requests=self._requests[cid] + 1,
                    weight=weight,
                    last=now,
                )
                affected.add(new_cid)
                self._push_expiry(new_cid)

    def observe_jobs_batch(
        self,
        file_ids,
        offsets,
        now=None,
        job_counts: list | None = None,
    ) -> set[int]:
        """Refine the partition with a window of jobs in columnar form.

        ``file_ids`` is the flat concatenation of the jobs' input sets
        and ``offsets`` the job boundaries (``offsets[j]:offsets[j+1]``
        is job ``j``'s segment), mirroring :class:`~repro.traces.trace.Trace`'s
        CSR layout.  ``now``, when given, is one decay timestamp per job;
        omitted, each job gets the logical per-call tick exactly as
        :meth:`observe_job` would.  ``job_counts``, when given, receives
        one ``(n_files_observed, n_classes)`` tuple per job, read after
        that job applied — the service layer's per-request receipts.

        Bit-identical to calling :meth:`observe_job` per segment — same
        partition, same class ids, same :meth:`state_dict`, and the
        returned set is exactly the union of the per-job affected sets —
        at ``half_life=inf`` and finite.  The win is the common case: a
        job whose (sorted-unique) input gathers onto whole existing
        classes advances request counts with a few vector ops instead of
        per-file dict/set churn; jobs that create, split, or dissolve
        classes fall back to the sequential core for that job only.
        """
        flat = np.ascontiguousarray(np.asarray(file_ids, dtype=np.int64))
        offs = np.asarray(offsets, dtype=np.int64)
        if offs.ndim != 1 or offs.size == 0:
            raise ValueError("offsets must be a non-empty 1-d array")
        n_jobs = offs.size - 1
        if (
            offs[0] != 0
            or (n_jobs and int(offs[-1]) != flat.size)
            or np.any(np.diff(offs) < 0)
        ):
            raise ValueError(
                "offsets must start at 0, end at len(file_ids), "
                "and be non-decreasing"
            )
        if flat.size and int(flat.min()) < 0:
            raise ValueError("file ids must be non-negative")
        nows = None if now is None else np.asarray(now, dtype=np.float64)
        if nows is not None and nows.shape != (n_jobs,):
            raise ValueError(
                f"now must have one timestamp per job, got shape "
                f"{nows.shape} for {n_jobs} jobs"
            )
        arr = self._grow_class_arr(int(flat.max()) + 1 if flat.size else 1)
        # One vector pass marks where consecutive flat entries strictly
        # increase; a segment is sorted-unique iff its interior slice of
        # this mask is all True.
        inc = flat[1:] > flat[:-1]
        offs_list = offs.tolist()
        nows_list = None if nows is None else nows.tolist()
        affected: set[int] = set()
        members = self._members
        requests_map = self._requests
        weight_map = self._weight
        last_map = self._last
        counts_append = None if job_counts is None else job_counts.append
        class_of = self._class_of
        affected_add = affected.add
        decaying = self.half_life != math.inf
        # Below this size, one python pass over the ids beats numpy
        # (gather + unique pay ~µs dispatch each; p50 jobs are tens of
        # files).  Above it, the vector path wins.
        small = 2048
        for j in range(n_jobs):
            a = offs_list[j]
            b = offs_list[j + 1]
            self._n_jobs += 1
            t = float(self._n_jobs) if nows_list is None else nows_list[j]
            if t > self._time:
                self._time = t
            else:
                t = self._time
            if self._expiry:
                affected |= self._expire(t)
                arr = self._class_arr  # _expire may regrow the mirror
            if a == b:
                if counts_append is not None:
                    counts_append((len(class_of), len(members)))
                continue
            touched_ids = None
            if b - a <= small:
                if b - a == 1 or bool(inc[a : b - 1].all()):
                    # Gather classes through the mirror (one C-speed
                    # fancy index instead of per-file probes of the
                    # million-key dict), then count per class in a
                    # small, cache-hot python dict.
                    counts = {}
                    for cid in arr[flat[a:b]].tolist():
                        if cid < 0:
                            counts = None  # unseen file
                            break
                        counts[cid] = counts.get(cid, 0) + 1
                    if counts is not None and all(
                        c == len(members[cid]) for cid, c in counts.items()
                    ):
                        touched_ids = counts
            elif bool(inc[a : b - 1].all()):
                seg = flat[a:b]
                cls = arr[seg]
                c0 = int(cls[0])
                if c0 >= 0:
                    if bool((cls == c0).all()):
                        # Dominant case: the whole job is one class.
                        if b - a == len(members[c0]):
                            touched_ids = (c0,)
                    elif int(cls.min()) >= 0:
                        u, counts = np.unique(cls, return_counts=True)
                        ul = u.tolist()
                        if all(
                            c == len(members[cid])
                            for cid, c in zip(ul, counts.tolist())
                        ):
                            touched_ids = ul
            if touched_ids is not None:
                # Pure whole-class touches: same per-class updates as the
                # sequential whole-touch branch (order across classes is
                # immaterial — the updates are independent and the expiry
                # heap pops by value).
                if decaying:
                    for cid in touched_ids:
                        affected_add(cid)
                        requests_map[cid] += 1
                        weight_map[cid] = self._decayed_weight(cid, t) + 1.0
                        last_map[cid] = t
                        self._push_expiry(cid)
                else:
                    # half_life=inf: decay and expiry are identities.
                    for cid in touched_ids:
                        affected_add(cid)
                        requests_map[cid] += 1
                        weight_map[cid] += 1.0
                        last_map[cid] = t
            else:
                # New files, a split, duplicates, or unsorted input:
                # exact sequential core.  set() over the wire-order ids
                # reproduces observe_job's insertion order (duplicates
                # are no-ops on the hash table).
                self._apply_request(set(flat[a:b].tolist()), t, affected)
                arr = self._class_arr  # _fresh_class may regrow it
            if counts_append is not None:
                counts_append((len(class_of), len(members)))
        return affected

    def state_dict(self) -> dict:
        """Serializable form of the full identifier state.

        The returned dict round-trips through JSON and
        :meth:`from_state_dict`; continuing to observe jobs after a
        restore yields exactly the partition (including class ids) an
        uninterrupted identifier would have produced.  This is the
        persistence hook behind the service layer's snapshot/restore.

        At ``half_life=inf`` the output is byte-for-byte the undecayed
        format (no decay fields), so pre-decay snapshots and undecayed
        identifiers stay interchangeable.  A finite half-life adds the
        decay configuration and clock at the top level plus per-class
        ``weight``/``last`` fields.
        """
        decayed = self.half_life != math.inf
        state = {
            "next_class": self._next_class,
            "n_jobs": self._n_jobs,
            "classes": [
                {
                    "id": cid,
                    "members": sorted(members),
                    "requests": self._requests[cid],
                    **(
                        {
                            "weight": self._weight[cid],
                            "last": self._last[cid],
                        }
                        if decayed
                        else {}
                    ),
                }
                for cid, members in sorted(self._members.items())
            ],
        }
        if decayed:
            state["half_life"] = self.half_life
            state["stale_threshold"] = self.stale_threshold
            state["time"] = self._time
        return state

    @classmethod
    def from_state_dict(cls, state: dict) -> "IncrementalFileculeIdentifier":
        """Rebuild an identifier from :meth:`state_dict` output.

        Accepts both formats: snapshots without decay fields restore an
        undecayed identifier (weights default to the request counts), and
        decayed snapshots restore the decay clock and per-class weights —
        continuing the stream after a restore dissolves stale classes at
        exactly the times an uninterrupted identifier would.
        """
        ident = cls(
            half_life=float(state.get("half_life", math.inf)),
            stale_threshold=float(state.get("stale_threshold", 0.5)),
        )
        ident._n_jobs = int(state["n_jobs"])
        ident._next_class = int(state["next_class"])
        ident._time = float(state.get("time", 0.0))
        for entry in state["classes"]:
            cid = int(entry["id"])
            if cid >= ident._next_class:
                raise ValueError(
                    f"class id {cid} not below next_class {ident._next_class}"
                )
            members = {int(f) for f in entry["members"]}
            if not members:
                raise ValueError(f"class {cid} has no members")
            ident._members[cid] = members
            ident._requests[cid] = int(entry["requests"])
            ident._weight[cid] = float(entry.get("weight", entry["requests"]))
            ident._last[cid] = float(entry.get("last", 0.0))
            for f in members:
                if f in ident._class_of:
                    raise ValueError(f"file {f} appears in two classes")
                ident._class_of[f] = cid
            ident._push_expiry(cid)
        return ident

    def observe_trace(self, trace: Trace, window: int = 8192) -> None:
        """Feed every traced job of ``trace`` in job-id order.

        Job start times drive the decay clock, so a finite ``half_life``
        is measured in trace seconds here (and the clock clamp makes the
        ≈-chronological job order safe).  Jobs stream through
        :meth:`observe_jobs_batch` in windows of ``window`` jobs —
        bit-identical to the per-job loop this method used to run, at a
        fraction of the cost (the trace is already columnar, so each
        window is a zero-copy slice).
        """
        ptr = trace.job_access_ptr
        starts = np.asarray(trace.job_starts, dtype=np.float64)
        files = trace.access_files
        # The per-job loop skipped empty jobs entirely (no clock tick),
        # so the batch windows index only non-empty jobs.  Empty jobs
        # occupy zero accesses, which keeps any run of jobs contiguous
        # in the flat access array: ptr[sel[i] + 1] == ptr[sel[i + 1]].
        nonempty = np.flatnonzero(np.diff(ptr) > 0)
        for lo in range(0, nonempty.size, window):
            sel = nonempty[lo : lo + window]
            base = int(ptr[sel[0]])
            ends = ptr[sel + 1]
            offs = np.empty(sel.size + 1, dtype=np.int64)
            offs[0] = 0
            offs[1:] = ends - base
            self.observe_jobs_batch(
                files[base : int(ends[-1])], offs, now=starts[sel]
            )

    # ------------------------------------------------------------------
    def partition(self, n_files: int | None = None, sizes=None) -> FileculePartition:
        """Snapshot the current partition as a :class:`FileculePartition`.

        ``n_files`` defaults to one past the largest observed file id;
        ``sizes`` (optional array indexed by file id) fills in byte sizes,
        else sizes are reported as 0.
        """
        if n_files is None:
            n_files = max(self._class_of, default=-1) + 1
        ordered = sorted(
            self._members.items(),
            key=lambda kv: (-self._requests[kv[0]], min(kv[1])),
        )
        filecules = []
        for new_id, (cid, member_set) in enumerate(ordered):
            arr = np.fromiter(member_set, dtype=np.int64, count=len(member_set))
            size = int(np.asarray(sizes)[arr].sum()) if sizes is not None else 0
            filecules.append(
                Filecule(
                    filecule_id=new_id,
                    file_ids=arr,
                    n_requests=self._requests[cid],
                    size_bytes=size,
                )
            )
        return FileculePartition(filecules, n_files)
