"""Online filecule identification by streaming partition refinement.

The paper (§6) notes that deployed data-management services cannot rely on
an offline pass over the full history: filecules must be identified
"adaptively and dynamically" as job submissions stream in.  This module
provides that: an :class:`IncrementalFileculeIdentifier` maintains the
exact filecule partition of the jobs observed *so far* and refines it in
time proportional to each job's input size.

Algorithm: classic partition refinement.  All files seen so far live in
classes; when a job arrives with input set ``S``, every class ``C`` is
split into ``C ∩ S`` (touched) and ``C \\ S`` (untouched) if both parts are
non-empty.  Brand-new files form one fresh class (they share the signature
"this job only" until a later job separates them).  An inductive argument
shows the maintained partition always equals signature grouping over the
observed prefix, which is asserted against :func:`find_filecules` in the
test suite.

Classes only ever split, never merge — the monotonicity that underlies the
paper's observation that partial knowledge yields *coarser* filecules.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.filecule import Filecule, FileculePartition
from repro.traces.trace import Trace


class IncrementalFileculeIdentifier:
    """Maintains the filecule partition of a growing job stream.

    Example
    -------
    >>> ident = IncrementalFileculeIdentifier()
    >>> sorted(ident.observe_job([1, 2, 3]))  # class 0 created
    [0]
    >>> sorted(ident.observe_job([2, 3]))  # class 0 split -> 0 and 1
    [0, 1]
    >>> sorted(tuple(c) for c in ident.classes())
    [(1,), (2, 3)]
    """

    def __init__(self) -> None:
        # class id -> set of member file ids (only current classes present)
        self._members: dict[int, set[int]] = {}
        # file id -> class id
        self._class_of: dict[int, int] = {}
        # class id -> number of jobs that accessed the class
        self._requests: dict[int, int] = {}
        self._next_class = 0
        self._n_jobs = 0

    # ------------------------------------------------------------------
    @property
    def n_jobs_observed(self) -> int:
        return self._n_jobs

    @property
    def n_files_observed(self) -> int:
        return len(self._class_of)

    @property
    def n_classes(self) -> int:
        return len(self._members)

    def class_of(self, file_id: int) -> int | None:
        """Current class id of ``file_id`` (None if never observed)."""
        return self._class_of.get(int(file_id))

    def classes(self) -> list[frozenset[int]]:
        """The current partition as a list of frozen member sets."""
        return [frozenset(m) for m in self._members.values()]

    def class_ids(self) -> list[int]:
        """Ids of the current classes (ascending; stable under queries)."""
        return sorted(self._members)

    def members_of_class(self, class_id: int) -> frozenset[int]:
        """Member file ids of one current class."""
        return frozenset(self._members[class_id])

    def requests_of_class(self, class_id: int) -> int:
        """How many observed jobs accessed the given class."""
        return self._requests[class_id]

    # ------------------------------------------------------------------
    def _fresh_class(self, members: set[int], requests: int) -> int:
        cid = self._next_class
        self._next_class += 1
        self._members[cid] = members
        self._requests[cid] = requests
        # dict.fromkeys + update walk the members at C speed.
        self._class_of.update(dict.fromkeys(members, cid))
        return cid

    def observe_job(self, file_ids: Iterable[int]) -> set[int]:
        """Refine the partition with one job's input set.

        Returns the ids of every class the job affected — freshly created
        classes, both halves of a split, and whole classes whose request
        count advanced.  Callers that memoize per-class derived data (the
        service's lookup fast path) invalidate exactly these entries.
        """
        # map(int, ...) normalizes numpy integers from direct callers (so
        # keys hash/serialize as plain ints) without per-element bytecode.
        request = set(map(int, file_ids))
        self._n_jobs += 1
        affected: set[int] = set()
        if not request:
            return affected

        class_of = self._class_of
        # Set-minus against the dict's keys view runs entirely in C.
        new_files = request - class_of.keys()
        if new_files:
            # Unseen files share the signature {this job} so far.
            affected.add(self._fresh_class(new_files, requests=1))
            request -= new_files

        # Group the remaining (known) files by their current class.
        touched: dict[int, set[int]] = {}
        for f in request:
            touched.setdefault(class_of[f], set()).add(f)

        for cid, touched_files in touched.items():
            affected.add(cid)
            current = self._members[cid]
            if len(touched_files) == len(current):
                # whole class requested: signature extends uniformly
                self._requests[cid] += 1
            else:
                # split: touched part gains this job in its signature
                current -= touched_files
                affected.add(
                    self._fresh_class(
                        touched_files, requests=self._requests[cid] + 1
                    )
                )
        return affected

    def state_dict(self) -> dict:
        """Serializable form of the full identifier state.

        The returned dict round-trips through JSON and
        :meth:`from_state_dict`; continuing to observe jobs after a
        restore yields exactly the partition (including class ids) an
        uninterrupted identifier would have produced.  This is the
        persistence hook behind the service layer's snapshot/restore.
        """
        return {
            "next_class": self._next_class,
            "n_jobs": self._n_jobs,
            "classes": [
                {
                    "id": cid,
                    "members": sorted(members),
                    "requests": self._requests[cid],
                }
                for cid, members in sorted(self._members.items())
            ],
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "IncrementalFileculeIdentifier":
        """Rebuild an identifier from :meth:`state_dict` output."""
        ident = cls()
        ident._n_jobs = int(state["n_jobs"])
        ident._next_class = int(state["next_class"])
        for entry in state["classes"]:
            cid = int(entry["id"])
            if cid >= ident._next_class:
                raise ValueError(
                    f"class id {cid} not below next_class {ident._next_class}"
                )
            members = {int(f) for f in entry["members"]}
            if not members:
                raise ValueError(f"class {cid} has no members")
            ident._members[cid] = members
            ident._requests[cid] = int(entry["requests"])
            for f in members:
                if f in ident._class_of:
                    raise ValueError(f"file {f} appears in two classes")
                ident._class_of[f] = cid
        return ident

    def observe_trace(self, trace: Trace) -> None:
        """Feed every traced job of ``trace`` in job-id order."""
        for _, files in trace.iter_jobs():
            if len(files):
                self.observe_job(files.tolist())

    # ------------------------------------------------------------------
    def partition(self, n_files: int | None = None, sizes=None) -> FileculePartition:
        """Snapshot the current partition as a :class:`FileculePartition`.

        ``n_files`` defaults to one past the largest observed file id;
        ``sizes`` (optional array indexed by file id) fills in byte sizes,
        else sizes are reported as 0.
        """
        if n_files is None:
            n_files = max(self._class_of, default=-1) + 1
        ordered = sorted(
            self._members.items(),
            key=lambda kv: (-self._requests[kv[0]], min(kv[1])),
        )
        filecules = []
        for new_id, (cid, member_set) in enumerate(ordered):
            arr = np.fromiter(member_set, dtype=np.int64, count=len(member_set))
            size = int(np.asarray(sizes)[arr].sum()) if sizes is not None else 0
            filecules.append(
                Filecule(
                    filecule_id=new_id,
                    file_ids=arr,
                    n_requests=self._requests[cid],
                    size_bytes=size,
                )
            )
        return FileculePartition(filecules, n_files)
