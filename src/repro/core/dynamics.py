"""Filecule dynamics: how stable are filecules over time?

The paper leaves as future work (§8): "How dynamic are [filecules]?  Do
files stay in the same filecules or do they change over time?  ... are two
filecules that contain the same file identical [across epochs]?"  This
module implements that experiment: split the trace into epochs, identify
filecules per epoch, and measure how much the partitions agree on the
files observed in both epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filecule import FileculePartition
from repro.core.identify import find_filecules
from repro.traces.filters import split_epochs
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class PartitionSimilarity:
    """Agreement between two partitions on their common files.

    Attributes
    ----------
    n_common_files:
        Files covered by both partitions.
    exact_fraction:
        Fraction of common files whose filecule, *restricted to common
        files*, is identical under both partitions — the paper's "are two
        filecules that contain the same file identical?" made precise.
    rand_index:
        Pairwise agreement probability (same/different filecule) over all
        pairs of common files; 1.0 means identical restricted partitions.
    """

    n_common_files: int
    exact_fraction: float
    rand_index: float


def partition_similarity(
    a: FileculePartition, b: FileculePartition
) -> PartitionSimilarity:
    """Compare two partitions on the files both cover.

    Uses the contingency table between a-labels and b-labels of common
    files: the Rand index follows from the pair counts; a file counts as an
    *exact* match when its a-class and b-class contain exactly the same
    common files (i.e. its row/column of the contingency table is a single
    cell on both axes).
    """
    if a.n_files != b.n_files:
        raise ValueError(
            f"partitions cover catalogs of different sizes: "
            f"{a.n_files} vs {b.n_files}"
        )
    common = np.flatnonzero((a.labels >= 0) & (b.labels >= 0))
    n = len(common)
    if n == 0:
        return PartitionSimilarity(0, 1.0, 1.0)
    la = a.labels[common]
    lb = b.labels[common]

    # contingency counts over (la, lb) pairs
    pairs = np.stack([la, lb], axis=1)
    uniq_pairs, pair_counts = np.unique(pairs, axis=0, return_counts=True)
    _, a_counts = np.unique(la, return_counts=True)
    _, b_counts = np.unique(lb, return_counts=True)

    def choose2(x: np.ndarray) -> float:
        x = x.astype(np.float64)
        return float((x * (x - 1) / 2.0).sum())

    total_pairs = n * (n - 1) / 2.0
    nij = choose2(pair_counts)
    ai = choose2(a_counts)
    bj = choose2(b_counts)
    if total_pairs == 0:
        rand = 1.0
    else:
        # agreements = pairs together in both + pairs apart in both
        rand = (nij + (total_pairs - ai - bj + nij)) / total_pairs

    # exact matches: cells that are alone in their row and column and
    # where the cell holds the full row/column mass
    a_ids, a_cells = np.unique(uniq_pairs[:, 0], return_counts=True)
    b_ids, b_cells = np.unique(uniq_pairs[:, 1], return_counts=True)
    a_single = dict(zip(a_ids.tolist(), a_cells.tolist()))
    b_single = dict(zip(b_ids.tolist(), b_cells.tolist()))
    exact_files = 0
    for (la_id, lb_id), count in zip(uniq_pairs.tolist(), pair_counts.tolist()):
        if a_single[la_id] == 1 and b_single[lb_id] == 1:
            exact_files += count
    return PartitionSimilarity(
        n_common_files=n,
        exact_fraction=exact_files / n,
        rand_index=float(rand),
    )


@dataclass(frozen=True, slots=True)
class EpochStability:
    """Similarity between the filecule partitions of two adjacent epochs."""

    epoch_a: int
    epoch_b: int
    n_jobs_a: int
    n_jobs_b: int
    similarity: PartitionSimilarity


def epoch_stability(trace: Trace, n_epochs: int = 4) -> list[EpochStability]:
    """Identify filecules per epoch and compare adjacent epochs.

    Returns one row per adjacent epoch pair.  High ``exact_fraction``
    means filecules are stable over time; low values mean dataset
    definitions drift and online identification must keep adapting.
    """
    epochs = split_epochs(trace, n_epochs)
    partitions = [find_filecules(e) for e in epochs]
    rows = []
    for k in range(n_epochs - 1):
        rows.append(
            EpochStability(
                epoch_a=k,
                epoch_b=k + 1,
                n_jobs_a=epochs[k].n_jobs,
                n_jobs_b=epochs[k + 1].n_jobs,
                similarity=partition_similarity(partitions[k], partitions[k + 1]),
            )
        )
    return rows
