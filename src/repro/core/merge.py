"""Merging partial filecule knowledge from multiple observers (§6).

The paper's §6 sketches a decentralized deployment: job logs accumulate at
"concentration points" (per-site schedulers) and no single point sees all
submissions.  Each concentrator identifies filecules from its own log —
necessarily *coarser* than the truth (see :mod:`repro.core.partial`).

This module supplies the missing aggregation step: two (or more) local
partitions can be combined **without exchanging raw logs** by taking the
*meet* (common refinement) of the partitions: files end up together iff
every observer that saw both kept them together.  Properties:

* the meet of all sites' partitions over the files they observed equals
  the global partition (each job is observed somewhere, and signature
  grouping factors through per-observer refinement);
* merging is commutative, associative and idempotent — concentrators can
  gossip partitions in any order;
* each additional observer can only refine (never coarsen) the estimate,
  so accuracy improves monotonically — quantified by
  :func:`merge_accuracy_curve`.

The exchanged state is one integer label per observed file — compact
enough for gossip.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filecule import Filecule, FileculePartition
from repro.core.dynamics import partition_similarity
from repro.core.identify import find_filecules
from repro.core.partial import identify_per_site
from repro.traces.trace import Trace


def merge_partitions(
    a: FileculePartition, b: FileculePartition
) -> FileculePartition:
    """The meet (common refinement) of two partial partitions.

    Files observed by both are grouped by the *pair* of labels; files
    observed by exactly one observer keep that observer's grouping; files
    observed by neither stay uncovered.  Request counts are not
    meaningful after a merge (observers count disjoint job sets), so the
    merged filecules carry the *sum* of both observers' counts where
    available — an upper bound on the true global count used only for
    ranking.
    """
    if a.n_files != b.n_files:
        raise ValueError(
            f"partitions cover catalogs of different sizes: "
            f"{a.n_files} vs {b.n_files}"
        )
    la, lb = a.labels, b.labels
    covered = np.flatnonzero((la >= 0) | (lb >= 0))
    if len(covered) == 0:
        return FileculePartition([], a.n_files)

    # encode the label pair; -1 (unobserved) is a valid pair component
    pair_a = la[covered].astype(np.int64)
    pair_b = lb[covered].astype(np.int64)
    keys = (pair_a + 1) * (int(lb.max(initial=0)) + 2) + (pair_b + 1)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_files = covered[order]
    boundaries = np.flatnonzero(
        np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
    )
    boundaries = np.append(boundaries, len(sorted_keys))

    def requests_for(file_id: int) -> int:
        total = 0
        if la[file_id] >= 0:
            total += a[int(la[file_id])].n_requests
        if lb[file_id] >= 0:
            total += b[int(lb[file_id])].n_requests
        return total

    groups: list[np.ndarray] = [
        np.sort(sorted_files[boundaries[i] : boundaries[i + 1]])
        for i in range(len(boundaries) - 1)
    ]
    groups.sort(key=lambda g: (-requests_for(int(g[0])), int(g[0])))
    filecules = [
        Filecule(
            filecule_id=i,
            file_ids=group,
            n_requests=requests_for(int(group[0])),
            size_bytes=0,
        )
        for i, group in enumerate(groups)
    ]
    return FileculePartition(filecules, a.n_files)


def merge_all(partitions: list[FileculePartition]) -> FileculePartition:
    """Fold :func:`merge_partitions` over a list of observers."""
    if not partitions:
        raise ValueError("need at least one partition to merge")
    merged = partitions[0]
    for other in partitions[1:]:
        merged = merge_partitions(merged, other)
    return merged


@dataclass(frozen=True, slots=True)
class MergeAccuracyPoint:
    """Accuracy of the merged estimate after adding the k-th observer."""

    n_observers: int
    observer: str
    n_files_covered: int
    n_classes: int
    exact_fraction: float
    rand_index: float


def merge_accuracy_curve(
    trace: Trace,
    global_partition: FileculePartition | None = None,
) -> list[MergeAccuracyPoint]:
    """How identification accuracy grows as sites pool their knowledge.

    Sites are merged in descending activity order (busiest concentrator
    first, the deployment §6 suggests).  Accuracy of each prefix-merge is
    measured against the global partition on the files the merge covers.
    """
    if global_partition is None:
        global_partition = find_filecules(trace)
    locals_ = identify_per_site(trace)
    by_activity = sorted(
        locals_.items(),
        key=lambda kv: int((trace.job_sites == kv[0]).sum()),
        reverse=True,
    )
    points: list[MergeAccuracyPoint] = []
    merged: FileculePartition | None = None
    for k, (site, local) in enumerate(by_activity, start=1):
        merged = local if merged is None else merge_partitions(merged, local)
        sim = partition_similarity(merged, global_partition)
        points.append(
            MergeAccuracyPoint(
                n_observers=k,
                observer=trace.site_names[site],
                n_files_covered=int((merged.labels >= 0).sum()),
                n_classes=len(merged),
                exact_fraction=sim.exact_fraction,
                rand_index=sim.rand_index,
            )
        )
    return points
