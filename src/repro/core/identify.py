"""Exact filecule identification by access-signature grouping.

Two files belong to the same filecule iff they are accessed by exactly the
same set of jobs (paper §3).  The *signature* of a file is therefore its
sorted array of accessing job ids; grouping files by signature yields the
filecule partition directly.

The implementation leans on the trace's file-major CSR view: one
``lexsort`` over all accesses, then one pass over files, keying a dict by
the raw bytes of each file's job-id slice.  Keying by the exact bytes (not
a hash truncated to 64 bits) makes false merges impossible; Python's dict
handles collision resolution internally.  Complexity is
``O(A log A)`` for the sort plus ``O(A)`` for grouping, with ``A`` the
number of accesses — this is what lets the identification run over
millions of accesses in seconds, as required to process DZero-scale
histories (13M accesses).
"""

from __future__ import annotations

import numpy as np

from repro.core.filecule import Filecule, FileculePartition
from repro.traces.trace import Trace


def signature_of_file(trace: Trace, file_id: int) -> tuple[int, ...]:
    """The access signature of one file: the sorted tuple of its job ids."""
    # .tolist() converts the whole slice in C — much faster than a
    # per-element int() loop for popular files with long signatures.
    return tuple(trace.file_jobs(file_id).tolist())


def find_filecules(trace: Trace) -> FileculePartition:
    """Partition the accessed files of ``trace`` into filecules.

    Returns a :class:`FileculePartition` whose filecules are ordered by
    (descending request count, ascending first file id) — a deterministic
    order convenient for "top filecule" selections in the transfer
    experiments.

    Files never accessed in the trace are left out of the partition
    (label ``-1``); the filecule definition is usage-based.
    """
    if trace.n_accesses == 0:
        return FileculePartition([], trace.n_files)

    # file-major view of accesses
    order = trace._file_order
    jobs_by_file = trace.access_jobs[order]
    ptr = trace.file_access_ptr

    groups: dict[bytes, list[int]] = {}
    for f in trace.accessed_file_ids:
        sig = jobs_by_file[ptr[f] : ptr[f + 1]].tobytes()
        bucket = groups.get(sig)
        if bucket is None:
            groups[sig] = [int(f)]
        else:
            bucket.append(int(f))

    popularity = trace.file_popularity
    sizes = trace.file_sizes

    members: list[np.ndarray] = []
    for file_list in groups.values():
        members.append(np.asarray(file_list, dtype=np.int64))
    # canonical order: most-requested first, ties by first member id
    members.sort(key=lambda arr: (-int(popularity[arr[0]]), int(arr[0])))

    filecules = [
        Filecule(
            filecule_id=i,
            file_ids=arr,
            n_requests=int(popularity[arr[0]]),
            size_bytes=int(sizes[arr].sum()),
        )
        for i, arr in enumerate(members)
    ]
    return FileculePartition(filecules, trace.n_files)
