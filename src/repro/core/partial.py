"""Partial-knowledge filecule identification (paper §6).

When there is no central collection point for job submissions, each site
(or domain) can only identify filecules from the jobs it observes locally.
The paper's key observation — proved here as a theorem-backed invariant and
quantified by :func:`coarsening_report` — is that *locally identified
filecules can only be coarser (larger) than the true, globally identified
ones*: two files accessed by identical global job sets are necessarily
accessed by identical local job sets, so the global partition (restricted
to locally-seen files) refines the local partition.

The report quantifies the paper's companion claim: "the more job
submissions, the more likely that the filecules will be smaller and thus
more accurate."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filecule import FileculePartition
from repro.core.identify import find_filecules
from repro.traces.trace import Trace


def identify_per_site(trace: Trace) -> dict[int, FileculePartition]:
    """Identify filecules independently from each site's own jobs.

    Returns a mapping from site code to the partition that site would
    compute from its local job log.  Sites with no jobs are omitted.
    """
    out: dict[int, FileculePartition] = {}
    sites = np.unique(trace.job_sites)
    for site in sites:
        sub = trace.subset_jobs(trace.job_sites == site)
        out[int(site)] = find_filecules(sub)
    return out


def identify_per_domain(trace: Trace) -> dict[int, FileculePartition]:
    """Identify filecules independently per Internet domain."""
    out: dict[int, FileculePartition] = {}
    domains = np.unique(trace.job_domains)
    for dom in domains:
        sub = trace.subset_jobs(trace.job_domains == dom)
        out[int(dom)] = find_filecules(sub)
    return out


def is_coarsening_of(
    local: FileculePartition, global_partition: FileculePartition
) -> bool:
    """True iff ``local`` is a coarsening of ``global_partition`` on the
    files the local view covers.

    Formally: for every pair of files covered by both partitions, being in
    the same *global* filecule implies being in the same *local* filecule.
    Checked in vectorized form: within each global class (restricted to
    locally covered files) all local labels must agree.
    """
    both = np.flatnonzero((local.labels >= 0) & (global_partition.labels >= 0))
    if len(both) == 0:
        return True
    g = global_partition.labels[both]
    loc = local.labels[both]
    order = np.argsort(g, kind="stable")
    g_sorted, l_sorted = g[order], loc[order]
    same_class = g_sorted[1:] == g_sorted[:-1]
    return bool(np.all(l_sorted[1:][same_class] == l_sorted[:-1][same_class]))


@dataclass(frozen=True, slots=True)
class PartialIdentificationReport:
    """Accuracy of one site/domain's locally identified filecules.

    Attributes
    ----------
    group:
        Site or domain name.
    n_jobs:
        Local job count (with file traces).
    n_files_seen:
        Files the group accessed at least once.
    n_local_filecules:
        Classes in the local partition.
    n_true_filecules:
        Classes of the *global* partition restricted to the seen files —
        the best any local observer could do.
    n_exact:
        Local filecules that coincide exactly with a restricted-global one.
    inflation:
        Mean local filecule size divided by mean restricted-true filecule
        size; always ≥ 1 (equality iff identification is perfect).
    """

    group: str
    n_jobs: int
    n_files_seen: int
    n_local_filecules: int
    n_true_filecules: int
    n_exact: int
    inflation: float

    @property
    def exact_fraction(self) -> float:
        """Fraction of local filecules that are exactly correct."""
        if self.n_local_filecules == 0:
            return 1.0
        return self.n_exact / self.n_local_filecules


def _compare(
    group: str,
    n_jobs: int,
    local: FileculePartition,
    global_partition: FileculePartition,
) -> PartialIdentificationReport:
    seen = np.flatnonzero(local.labels >= 0)
    if len(seen) == 0:
        return PartialIdentificationReport(group, n_jobs, 0, 0, 0, 0, 1.0)
    loc = local.labels[seen]
    glo = global_partition.labels[seen]
    if np.any(glo < 0):
        raise ValueError(
            "local view covers files outside the global partition; both "
            "partitions must come from the same underlying trace"
        )
    # distinct (local, global) label pairs
    pairs = np.stack([loc, glo], axis=1)
    uniq_pairs = np.unique(pairs, axis=0)
    n_local = len(np.unique(loc))
    n_true = len(np.unique(glo))
    # a local class is exact iff it pairs with exactly one global class and
    # that global class pairs with exactly one local class
    loc_ids, loc_pair_counts = np.unique(uniq_pairs[:, 0], return_counts=True)
    glo_ids, glo_pair_counts = np.unique(uniq_pairs[:, 1], return_counts=True)
    loc_unique = dict(zip(loc_ids.tolist(), loc_pair_counts.tolist()))
    glo_unique = dict(zip(glo_ids.tolist(), glo_pair_counts.tolist()))
    n_exact = sum(
        1
        for lpair, gpair in uniq_pairs.tolist()
        if loc_unique[lpair] == 1 and glo_unique[gpair] == 1
    )
    inflation = n_true / n_local if n_local else 1.0
    return PartialIdentificationReport(
        group=group,
        n_jobs=n_jobs,
        n_files_seen=len(seen),
        n_local_filecules=n_local,
        n_true_filecules=n_true,
        n_exact=n_exact,
        inflation=float(inflation),
    )


def coarsening_report(
    trace: Trace,
    group_by: str = "site",
    global_partition: FileculePartition | None = None,
) -> list[PartialIdentificationReport]:
    """Quantify per-site (or per-domain) identification accuracy.

    Runs global identification once, local identification per group, and
    compares.  Rows are sorted by descending local job count so the
    paper's "more jobs ⇒ more accurate" trend reads top-to-bottom.
    """
    if group_by not in ("site", "domain"):
        raise ValueError(f"group_by must be 'site' or 'domain', got {group_by!r}")
    if global_partition is None:
        global_partition = find_filecules(trace)
    if group_by == "site":
        locals_ = identify_per_site(trace)
        codes = trace.job_sites
        names = trace.site_names
    else:
        locals_ = identify_per_domain(trace)
        codes = trace.job_domains
        names = trace.domain_names
    reports = []
    for code, local in locals_.items():
        n_jobs = int((codes == code).sum())
        reports.append(_compare(names[code], n_jobs, local, global_partition))
    reports.sort(key=lambda r: r.n_jobs, reverse=True)
    return reports
