"""Invariant checks for filecule partitions.

These validators encode the three properties the paper derives from the
filecule definition (§3) plus maximality (the partition is the *coarsest*
signature-consistent grouping).  They are used by the test suite and
available to users who load partitions from external sources.
"""

from __future__ import annotations

import numpy as np

from repro.core.filecule import FileculePartition
from repro.traces.trace import Trace


class FileculeInvariantError(AssertionError):
    """A filecule partition violates one of the definitional invariants."""


def assert_partition_valid(trace: Trace, partition: FileculePartition) -> None:
    """Raise :class:`FileculeInvariantError` unless ``partition`` is a valid
    filecule partition of ``trace``.

    Checks, in order:

    1. **coverage** — exactly the accessed files of the trace are covered;
    2. **disjointness** — no file belongs to two filecules (property 1);
    3. **non-emptiness** — every filecule has ≥ 1 file (property 2);
    4. **signature consistency** — all members of a filecule are accessed
       by the same job set, and ``n_requests`` equals its length
       (property 3: file and filecule popularity coincide);
    5. **maximality** — distinct filecules have distinct signatures (else
       they should have been one filecule).
    """
    if partition.n_files != trace.n_files:
        raise FileculeInvariantError(
            f"partition covers a catalog of {partition.n_files} files, "
            f"trace has {trace.n_files}"
        )

    covered = np.flatnonzero(partition.labels >= 0)
    accessed = trace.accessed_file_ids
    if not np.array_equal(covered, accessed):
        missing = np.setdiff1d(accessed, covered)
        extra = np.setdiff1d(covered, accessed)
        raise FileculeInvariantError(
            f"coverage mismatch: {len(missing)} accessed files uncovered, "
            f"{len(extra)} unaccessed files covered"
        )

    seen = np.zeros(trace.n_files, dtype=bool)
    for fc in partition:
        if fc.n_files == 0:
            raise FileculeInvariantError(f"filecule #{fc.filecule_id} is empty")
        if np.any(seen[fc.file_ids]):
            raise FileculeInvariantError(
                f"filecule #{fc.filecule_id} overlaps a previous filecule"
            )
        seen[fc.file_ids] = True

    signatures: dict[bytes, int] = {}
    for fc in partition:
        ref_jobs = trace.file_jobs(int(fc.file_ids[0]))
        sig = ref_jobs.tobytes()
        if fc.n_requests != len(ref_jobs):
            raise FileculeInvariantError(
                f"filecule #{fc.filecule_id} claims {fc.n_requests} requests "
                f"but its files were accessed by {len(ref_jobs)} jobs"
            )
        for f in fc.file_ids[1:]:
            if trace.file_jobs(int(f)).tobytes() != sig:
                raise FileculeInvariantError(
                    f"filecule #{fc.filecule_id}: files {int(fc.file_ids[0])} "
                    f"and {int(f)} have different access signatures"
                )
        other = signatures.get(sig)
        if other is not None:
            raise FileculeInvariantError(
                f"filecules #{other} and #{fc.filecule_id} share a signature "
                f"and should be merged (partition is not maximal)"
            )
        signatures[sig] = fc.filecule_id

    # size bookkeeping
    for fc in partition:
        expected = int(trace.file_sizes[fc.file_ids].sum())
        if fc.size_bytes not in (0, expected):
            raise FileculeInvariantError(
                f"filecule #{fc.filecule_id} size {fc.size_bytes} != "
                f"sum of member sizes {expected}"
            )


def partition_is_valid(trace: Trace, partition: FileculePartition) -> bool:
    """Boolean form of :func:`assert_partition_valid`."""
    try:
        assert_partition_valid(trace, partition)
    except FileculeInvariantError:
        return False
    return True
