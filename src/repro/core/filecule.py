"""The :class:`Filecule` value type and :class:`FileculePartition` container."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from collections.abc import Iterator

import numpy as np

from repro.traces.trace import Trace
from repro.util.units import format_bytes


@dataclass(frozen=True)
class Filecule:
    """One filecule: a maximal always-used-together group of files.

    Attributes
    ----------
    filecule_id:
        Dense index within the owning partition.
    file_ids:
        Sorted, read-only array of member file ids.
    n_requests:
        Number of jobs that accessed the filecule.  By property 3 of the
        definition this equals the request count of every member file.
    size_bytes:
        Total size of all member files.
    """

    filecule_id: int
    file_ids: np.ndarray = field(repr=False)
    n_requests: int
    size_bytes: int

    def __post_init__(self) -> None:
        arr = np.asarray(self.file_ids, dtype=np.int64)
        if arr.ndim != 1 or len(arr) == 0:
            raise ValueError("a filecule must contain at least one file")
        arr = np.sort(arr)
        arr.setflags(write=False)
        object.__setattr__(self, "file_ids", arr)
        if self.n_requests < 0:
            raise ValueError(f"negative request count: {self.n_requests}")
        if self.size_bytes < 0:
            raise ValueError(f"negative size: {self.size_bytes}")

    @property
    def n_files(self) -> int:
        """Number of member files (1 for a "monatomic" filecule)."""
        return len(self.file_ids)

    @property
    def is_monatomic(self) -> bool:
        """True for single-file filecules (paper: the noble-gas analogy)."""
        return self.n_files == 1

    def __contains__(self, file_id: int) -> bool:
        idx = int(np.searchsorted(self.file_ids, file_id))
        return idx < len(self.file_ids) and int(self.file_ids[idx]) == file_id

    def __len__(self) -> int:
        return self.n_files

    def __str__(self) -> str:
        return (
            f"filecule #{self.filecule_id}: {self.n_files} files, "
            f"{format_bytes(self.size_bytes)}, {self.n_requests} requests"
        )


class FileculePartition:
    """A partition of the accessed files of a trace into filecules.

    The canonical way to obtain one is :func:`repro.core.find_filecules`.
    Files that were never accessed are outside the partition and carry
    label ``-1`` — the paper's filecules are defined by usage, so unused
    files have no filecule.
    """

    def __init__(self, filecules: list[Filecule], n_files: int) -> None:
        self._filecules = list(filecules)
        self.n_files = int(n_files)
        labels = np.full(n_files, -1, dtype=np.int64)
        for fc in self._filecules:
            if fc.file_ids.max(initial=-1) >= n_files:
                raise ValueError(
                    f"filecule #{fc.filecule_id} references file id beyond "
                    f"catalog size {n_files}"
                )
            if np.any(labels[fc.file_ids] != -1):
                raise ValueError(
                    f"filecule #{fc.filecule_id} overlaps another filecule"
                )
            labels[fc.file_ids] = fc.filecule_id
        labels.setflags(write=False)
        self.labels = labels

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._filecules)

    def __iter__(self) -> Iterator[Filecule]:
        return iter(self._filecules)

    def __getitem__(self, filecule_id: int) -> Filecule:
        return self._filecules[filecule_id]

    def filecule_of(self, file_id: int) -> Filecule | None:
        """The filecule containing ``file_id``, or None if never accessed."""
        label = int(self.labels[file_id])
        return None if label == -1 else self._filecules[label]

    # -- vectorized columns --------------------------------------------------
    @cached_property
    def files_per_filecule(self) -> np.ndarray:
        """Member count of each filecule (Figure 7 series)."""
        out = np.array([fc.n_files for fc in self._filecules], dtype=np.int64)
        out.setflags(write=False)
        return out

    @cached_property
    def sizes_bytes(self) -> np.ndarray:
        """Total byte size of each filecule (Figure 6 series)."""
        out = np.array([fc.size_bytes for fc in self._filecules], dtype=np.int64)
        out.setflags(write=False)
        return out

    @cached_property
    def requests(self) -> np.ndarray:
        """Request count of each filecule (Figures 8–9 series)."""
        out = np.array([fc.n_requests for fc in self._filecules], dtype=np.int64)
        out.setflags(write=False)
        return out

    @property
    def n_covered_files(self) -> int:
        """Number of files that belong to some filecule."""
        return int(self.files_per_filecule.sum()) if len(self) else 0

    # -- trace-coupled statistics ---------------------------------------------
    def representative_files(self) -> np.ndarray:
        """The smallest member file id of each filecule.

        All members of a filecule share the same job set, so any analysis
        of "which jobs/users/sites touch this filecule" may be run on one
        representative file per filecule.
        """
        out = np.array([int(fc.file_ids[0]) for fc in self._filecules], np.int64)
        out.setflags(write=False)
        return out

    def filecules_per_job(self, trace: Trace) -> np.ndarray:
        """Distinct filecules touched by each job (Figure 5 series).

        Vectorized: label every access, then count unique (job, label)
        pairs per job.
        """
        if trace.n_files != self.n_files:
            raise ValueError(
                f"partition covers {self.n_files} files but trace has "
                f"{trace.n_files}"
            )
        if trace.n_accesses == 0:
            return np.zeros(trace.n_jobs, dtype=np.int64)
        labels = self.labels[trace.access_files]
        if np.any(labels < 0):
            raise ValueError(
                "trace accesses files outside this partition; identify "
                "filecules on the same trace"
            )
        pairs = trace.access_jobs * (len(self._filecules) + 1) + labels
        unique_pairs = np.unique(pairs)
        jobs_of_pairs = unique_pairs // (len(self._filecules) + 1)
        return np.bincount(jobs_of_pairs, minlength=trace.n_jobs).astype(np.int64)

    def users_per_filecule(self, trace: Trace) -> np.ndarray:
        """Distinct users that accessed each filecule (Figure 4 series)."""
        reps = self.representative_files()
        out = np.empty(len(self._filecules), dtype=np.int64)
        for i, rep in enumerate(reps):
            jobs = trace.file_jobs(int(rep))
            out[i] = len(np.unique(trace.job_users[jobs]))
        return out

    def sites_per_filecule(self, trace: Trace) -> np.ndarray:
        """Distinct submission sites that accessed each filecule."""
        reps = self.representative_files()
        out = np.empty(len(self._filecules), dtype=np.int64)
        for i, rep in enumerate(reps):
            jobs = trace.file_jobs(int(rep))
            out[i] = len(np.unique(trace.job_sites[jobs]))
        return out

    def dominant_tiers(self, trace: Trace) -> np.ndarray:
        """Most common file tier within each filecule.

        Filecules identified on a mixed trace are normally tier-pure
        (datasets are tier-homogeneous); this resolves ties deterministically
        toward the lowest tier code when they are not.
        """
        out = np.empty(len(self._filecules), dtype=np.int16)
        for i, fc in enumerate(self._filecules):
            tiers = trace.file_tiers[fc.file_ids]
            codes, counts = np.unique(tiers, return_counts=True)
            out[i] = codes[np.argmax(counts)]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FileculePartition({len(self)} filecules over "
            f"{self.n_covered_files}/{self.n_files} files)"
        )
