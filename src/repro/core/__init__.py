"""Filecules: identification, properties and derived statistics.

A *filecule* (paper §3) is a maximal group of files that is always used
together: formally, files :math:`F_1,\\dots,F_n` form a filecule iff every
job (dataset request) that contains one of them contains all of them.
Equivalently, a filecule is an equivalence class of files under the
relation "accessed by exactly the same set of jobs" — which is how
:func:`find_filecules` computes them.

Three direct consequences of the definition (paper §3) are enforced as
invariants by :func:`repro.core.properties.assert_partition_valid`:

1. any two filecules are disjoint;
2. a filecule has at least one file (single-file "monatomic" filecules are
   allowed);
3. every file in a filecule has the same request count, so popularity is
   well-defined per filecule.
"""

from repro.core.filecule import Filecule, FileculePartition
from repro.core.identify import find_filecules, signature_of_file
from repro.core.incremental import IncrementalFileculeIdentifier
from repro.core.partial import (
    PartialIdentificationReport,
    identify_per_site,
    identify_per_domain,
    coarsening_report,
    is_coarsening_of,
)
from repro.core.merge import (
    MergeAccuracyPoint,
    merge_accuracy_curve,
    merge_all,
    merge_partitions,
)
from repro.core.dynamics import (
    EpochStability,
    partition_similarity,
    epoch_stability,
)
from repro.core.properties import (
    FileculeInvariantError,
    assert_partition_valid,
    partition_is_valid,
)

__all__ = [
    "Filecule",
    "FileculePartition",
    "find_filecules",
    "signature_of_file",
    "IncrementalFileculeIdentifier",
    "PartialIdentificationReport",
    "identify_per_site",
    "identify_per_domain",
    "coarsening_report",
    "is_coarsening_of",
    "MergeAccuracyPoint",
    "merge_accuracy_curve",
    "merge_all",
    "merge_partitions",
    "EpochStability",
    "partition_similarity",
    "epoch_stability",
    "FileculeInvariantError",
    "assert_partition_valid",
    "partition_is_valid",
]
