"""Column-oriented trace container.

A :class:`Trace` is the in-memory form of the two SAM trace types the paper
analyzes (§2.3): application traces (one row per job) and file traces (one
row per *access*, i.e. per (job, file) pair).  Storage is structure-of-
arrays on numpy so the §3 characterization — millions of accesses — runs as
a handful of ``bincount``/``sort`` calls rather than Python loops (per the
scientific-python optimization guides: vectorize, use views, avoid copies).

Access rows are canonicalized at construction: sorted by (job, file) and
de-duplicated, giving CSR-style slicing in both directions (job → files and
file → jobs).  The *number of requests for a file* is therefore the number
of distinct jobs that read it, which is exactly the popularity notion the
paper uses (a job reads every event of every input file once, §3).
"""

from __future__ import annotations

from functools import cached_property
from collections.abc import Iterator

import numpy as np

from repro.traces.records import (
    TIER_NAMES,
    FileMeta,
    JobMeta,
    tier_name,
)


class TraceValidationError(ValueError):
    """Raised when trace columns are mutually inconsistent."""


def _as_array(values, dtype) -> np.ndarray:
    arr = np.asarray(values, dtype=dtype)
    if arr.ndim != 1:
        raise TraceValidationError(f"expected 1-D column, got shape {arr.shape}")
    return arr


class Trace:
    """An immutable job/file-access trace.

    Parameters
    ----------
    file_sizes, file_tiers, file_datasets:
        Per-file columns (length ``n_files``): size in bytes, tier code,
        producing dataset id.
    job_users, job_nodes, job_tiers, job_starts, job_ends:
        Per-job columns (length ``n_jobs``).  ``job_nodes`` indexes the
        node table; user/site/domain structure is resolved through it.
    access_jobs, access_files:
        The file trace: parallel arrays of (job id, file id) pairs.
        Duplicates are merged; order is not significant.
    user_domains:
        Per-user domain code (length ``n_users``).
    node_sites, node_domains:
        Per-node site and domain codes (length ``n_nodes``).
    site_names, domain_names:
        Decoding tables for site and domain codes.
    job_labels:
        Optional original job ids, preserved by the filter functions so
        sub-traces remain attributable to the full trace.
    canonical:
        Promise that ``access_jobs``/``access_files`` are already sorted
        by (job, file) and de-duplicated, skipping canonicalization so
        the columns are adopted as zero-copy views.  Internal fast path
        for rebuilding a trace from another trace's columns (e.g. the
        shared-memory reconstruction in :mod:`repro.parallel.shm`).
    """

    __slots__ = (
        "file_sizes",
        "file_tiers",
        "file_datasets",
        "job_users",
        "job_nodes",
        "job_tiers",
        "job_starts",
        "job_ends",
        "access_jobs",
        "access_files",
        "user_domains",
        "node_sites",
        "node_domains",
        "site_names",
        "domain_names",
        "job_labels",
        "__dict__",  # for cached_property
    )

    def __init__(
        self,
        *,
        file_sizes,
        file_tiers,
        file_datasets,
        job_users,
        job_nodes,
        job_tiers,
        job_starts,
        job_ends,
        access_jobs,
        access_files,
        user_domains,
        node_sites,
        node_domains,
        site_names,
        domain_names,
        job_labels=None,
        validate: bool = True,
        canonical: bool = False,
    ) -> None:
        self.file_sizes = _as_array(file_sizes, np.int64)
        self.file_tiers = _as_array(file_tiers, np.int16)
        self.file_datasets = _as_array(file_datasets, np.int32)
        self.job_users = _as_array(job_users, np.int32)
        self.job_nodes = _as_array(job_nodes, np.int32)
        self.job_tiers = _as_array(job_tiers, np.int16)
        self.job_starts = _as_array(job_starts, np.float64)
        self.job_ends = _as_array(job_ends, np.float64)
        self.user_domains = _as_array(user_domains, np.int16)
        self.node_sites = _as_array(node_sites, np.int32)
        self.node_domains = _as_array(node_domains, np.int16)
        self.site_names = tuple(site_names)
        self.domain_names = tuple(domain_names)
        self.job_labels = (
            np.arange(len(self.job_users), dtype=np.int64)
            if job_labels is None
            else _as_array(job_labels, np.int64)
        )

        aj = _as_array(access_jobs, np.int64)
        af = _as_array(access_files, np.int64)
        if len(aj) != len(af):
            raise TraceValidationError(
                f"access columns differ in length: {len(aj)} jobs vs {len(af)} files"
            )
        # Canonical order: by job then file, duplicates merged.
        if len(aj) and not canonical:
            order = np.lexsort((af, aj))
            aj, af = aj[order], af[order]
            keep = np.empty(len(aj), dtype=bool)
            keep[0] = True
            np.logical_or(aj[1:] != aj[:-1], af[1:] != af[:-1], out=keep[1:])
            aj, af = aj[keep], af[keep]
        self.access_jobs = aj
        self.access_files = af

        # Freeze all columns; Trace is immutable by contract.
        for name in (
            "file_sizes",
            "file_tiers",
            "file_datasets",
            "job_users",
            "job_nodes",
            "job_tiers",
            "job_starts",
            "job_ends",
            "access_jobs",
            "access_files",
            "user_domains",
            "node_sites",
            "node_domains",
            "job_labels",
        ):
            getattr(self, name).setflags(write=False)

        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def n_files(self) -> int:
        """Number of files in the catalog (including never-accessed ones)."""
        return len(self.file_sizes)

    @property
    def n_jobs(self) -> int:
        return len(self.job_users)

    @property
    def n_users(self) -> int:
        return len(self.user_domains)

    @property
    def n_nodes(self) -> int:
        return len(self.node_sites)

    @property
    def n_sites(self) -> int:
        return len(self.site_names)

    @property
    def n_domains(self) -> int:
        return len(self.domain_names)

    @property
    def n_accesses(self) -> int:
        """Number of (job, file) access pairs after de-duplication."""
        return len(self.access_jobs)

    def _validate(self) -> None:
        nf, nj, nu, nn = self.n_files, self.n_jobs, self.n_users, self.n_nodes
        for name, col, expect in (
            ("file_tiers", self.file_tiers, nf),
            ("file_datasets", self.file_datasets, nf),
            ("job_nodes", self.job_nodes, nj),
            ("job_tiers", self.job_tiers, nj),
            ("job_starts", self.job_starts, nj),
            ("job_ends", self.job_ends, nj),
            ("job_labels", self.job_labels, nj),
        ):
            if len(col) != expect:
                raise TraceValidationError(
                    f"{name} has length {len(col)}, expected {expect}"
                )
        if nf and self.file_sizes.min() < 0:
            raise TraceValidationError("negative file size")
        for name, col, hi in (
            ("file_tiers", self.file_tiers, len(TIER_NAMES)),
            ("job_tiers", self.job_tiers, len(TIER_NAMES)),
            ("job_users", self.job_users, nu),
            ("job_nodes", self.job_nodes, nn),
            ("user_domains", self.user_domains, self.n_domains),
            ("node_sites", self.node_sites, self.n_sites),
            ("node_domains", self.node_domains, self.n_domains),
        ):
            if len(col) and (col.min() < 0 or col.max() >= hi):
                raise TraceValidationError(
                    f"{name} contains codes outside [0, {hi})"
                )
        if nj and np.any(self.job_ends < self.job_starts):
            raise TraceValidationError("job ends before it starts")
        if self.n_accesses:
            if self.access_jobs.min() < 0 or self.access_jobs.max() >= nj:
                raise TraceValidationError("access job id out of range")
            if self.access_files.min() < 0 or self.access_files.max() >= nf:
                raise TraceValidationError("access file id out of range")

    # ------------------------------------------------------------------
    # derived structure (lazy, cached, all read-only views)
    # ------------------------------------------------------------------
    @cached_property
    def job_access_ptr(self) -> np.ndarray:
        """CSR pointer: accesses of job ``j`` live at ``[ptr[j], ptr[j+1])``."""
        counts = np.bincount(self.access_jobs, minlength=self.n_jobs)
        ptr = np.zeros(self.n_jobs + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        ptr.setflags(write=False)
        return ptr

    @cached_property
    def _file_order(self) -> np.ndarray:
        """Permutation sorting accesses by (file, job)."""
        order = np.lexsort((self.access_jobs, self.access_files))
        order.setflags(write=False)
        return order

    @cached_property
    def file_access_ptr(self) -> np.ndarray:
        """CSR pointer into ``accesses[_file_order]`` grouped per file."""
        counts = np.bincount(self.access_files, minlength=self.n_files)
        ptr = np.zeros(self.n_files + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        ptr.setflags(write=False)
        return ptr

    @cached_property
    def files_per_job(self) -> np.ndarray:
        """Number of distinct input files of each job (Figure 1 series)."""
        out = np.bincount(self.access_jobs, minlength=self.n_jobs).astype(np.int64)
        out.setflags(write=False)
        return out

    @cached_property
    def file_popularity(self) -> np.ndarray:
        """Requests per file = number of distinct jobs reading it."""
        out = np.bincount(self.access_files, minlength=self.n_files).astype(np.int64)
        out.setflags(write=False)
        return out

    @cached_property
    def job_input_bytes(self) -> np.ndarray:
        """Total input bytes of each job (sum of its files' sizes)."""
        contrib = self.file_sizes[self.access_files]
        out = np.zeros(self.n_jobs, dtype=np.int64)
        np.add.at(out, self.access_jobs, contrib)
        out.setflags(write=False)
        return out

    @cached_property
    def job_sites(self) -> np.ndarray:
        """Site code of each job (through its submission node)."""
        out = self.node_sites[self.job_nodes]
        out.setflags(write=False)
        return out

    @cached_property
    def job_domains(self) -> np.ndarray:
        """Internet-domain code of each job (through its submission node)."""
        out = self.node_domains[self.job_nodes]
        out.setflags(write=False)
        return out

    @cached_property
    def file_size_list(self) -> list[int]:
        """``file_sizes`` as a plain Python list (one shared conversion).

        Used by the per-access replay path (via :attr:`replay_columns`)
        and by the batch kernels' eviction bookkeeping; evicted together
        with the other list copies by :meth:`release_replay_columns`.
        """
        return self.file_sizes.tolist()

    @cached_property
    def replay_columns(self) -> tuple[list, list, list, list]:
        """``(job_ptr, access_files, file_sizes, job_starts)`` as plain lists.

        The cache simulator's inner loop reads one job id, one file id,
        one size and one timestamp per access; indexing numpy arrays
        there boxes a fresh numpy scalar each time (hundreds of ns per
        access at ~13M accesses).  Converting the columns to Python
        lists once per trace — they are immutable, so the conversion is
        shared by every (policy, capacity) cell of a sweep — makes the
        replay loop pure list indexing.  Costs roughly 40 bytes per
        access while cached; at paper scale that rivals the numpy
        columns themselves, so the copies are *evictable*: call
        :meth:`release_replay_columns` when a replay consumer is done
        (the batch kernels never materialize them at all).
        """
        return (
            self.job_access_ptr.tolist(),
            self.access_files.tolist(),
            self.file_size_list,
            self.job_starts.tolist(),
        )

    def release_replay_columns(self) -> None:
        """Drop the cached list copies built by :attr:`replay_columns`.

        The numpy columns are untouched; a later :attr:`replay_columns`
        access simply rebuilds the lists.  Frees ~40 bytes/access —
        roughly half the resident footprint of a paper-scale trace.
        """
        self.__dict__.pop("replay_columns", None)
        self.__dict__.pop("file_size_list", None)

    @cached_property
    def access_size_cumsum(self) -> np.ndarray:
        """Prefix sums of per-access byte sizes (length ``n_accesses+1``).

        ``cumsum[b] - cumsum[a]`` is the total bytes requested by the
        access range ``[a, b)`` — the batch replay kernels account whole
        hit runs with one subtraction instead of per-access adds.
        """
        out = np.zeros(self.n_accesses + 1, dtype=np.int64)
        np.cumsum(self.file_sizes[self.access_files], out=out[1:])
        out.setflags(write=False)
        return out

    @cached_property
    def accessed_file_ids(self) -> np.ndarray:
        """Sorted ids of files with at least one access."""
        out = np.flatnonzero(self.file_popularity > 0)
        out.setflags(write=False)
        return out

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def job_files(self, job_id: int) -> np.ndarray:
        """File ids accessed by ``job_id`` (sorted, read-only view)."""
        ptr = self.job_access_ptr
        return self.access_files[ptr[job_id] : ptr[job_id + 1]]

    def file_jobs(self, file_id: int) -> np.ndarray:
        """Job ids that accessed ``file_id`` (sorted, read-only view)."""
        ptr = self.file_access_ptr
        return self.access_jobs[self._file_order[ptr[file_id] : ptr[file_id + 1]]]

    def iter_jobs(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(job_id, file_ids)`` in job-id (≈ chronological) order."""
        ptr = self.job_access_ptr
        for j in range(self.n_jobs):
            yield j, self.access_files[ptr[j] : ptr[j + 1]]

    def file_meta(self, file_id: int) -> FileMeta:
        """Materialize one file row as a :class:`FileMeta`."""
        return FileMeta(
            file_id=file_id,
            name=f"f{file_id:08d}.{tier_name(int(self.file_tiers[file_id]))}",
            size_bytes=int(self.file_sizes[file_id]),
            tier=int(self.file_tiers[file_id]),
            dataset_id=int(self.file_datasets[file_id]),
        )

    def job_meta(self, job_id: int) -> JobMeta:
        """Materialize one job row as a :class:`JobMeta`."""
        node = int(self.job_nodes[job_id])
        return JobMeta(
            job_id=int(self.job_labels[job_id]),
            user_id=int(self.job_users[job_id]),
            node_id=node,
            site_id=int(self.node_sites[node]),
            domain_id=int(self.node_domains[node]),
            tier=int(self.job_tiers[job_id]),
            start_time=float(self.job_starts[job_id]),
            end_time=float(self.job_ends[job_id]),
            file_ids=tuple(int(f) for f in self.job_files(job_id)),
        )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def total_bytes(self, file_ids=None) -> int:
        """Total size of the given files (default: all accessed files)."""
        if file_ids is None:
            file_ids = self.accessed_file_ids
        return int(self.file_sizes[np.asarray(file_ids, dtype=np.int64)].sum())

    def time_span(self) -> tuple[float, float]:
        """(earliest job start, latest job end) over the whole trace."""
        if self.n_jobs == 0:
            return (0.0, 0.0)
        return float(self.job_starts.min()), float(self.job_ends.max())

    def subset_jobs(self, mask: np.ndarray) -> "Trace":
        """New trace keeping only jobs where ``mask`` is True.

        The file/user/node catalogs are preserved unchanged (global file
        ids stay comparable across sub-traces — required by the §6
        partial-knowledge experiments); job rows are renumbered densely
        and their original ids retained in ``job_labels``.
        """
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.n_jobs:
            raise ValueError(
                f"mask length {len(mask)} != number of jobs {self.n_jobs}"
            )
        new_of_old = np.full(self.n_jobs, -1, dtype=np.int64)
        kept = np.flatnonzero(mask)
        new_of_old[kept] = np.arange(len(kept))
        a_keep = mask[self.access_jobs]
        return Trace(
            file_sizes=self.file_sizes,
            file_tiers=self.file_tiers,
            file_datasets=self.file_datasets,
            job_users=self.job_users[kept],
            job_nodes=self.job_nodes[kept],
            job_tiers=self.job_tiers[kept],
            job_starts=self.job_starts[kept],
            job_ends=self.job_ends[kept],
            access_jobs=new_of_old[self.access_jobs[a_keep]],
            access_files=self.access_files[a_keep],
            user_domains=self.user_domains,
            node_sites=self.node_sites,
            node_domains=self.node_domains,
            site_names=self.site_names,
            domain_names=self.domain_names,
            job_labels=self.job_labels[kept],
            validate=False,
        )

    def subset_accesses(self, mask: np.ndarray) -> "Trace":
        """New trace keeping only accesses where ``mask`` is True.

        All catalogs *and all job rows* are preserved unchanged — job
        ids, start times and file ids stay comparable with the parent
        trace.  This is the miss-through primitive of the hierarchical
        replay (:mod:`repro.engine.hierarchy`): the accesses a cache
        tier missed become the demand stream of the tier below it, with
        each surviving access keeping its original job and timestamp.

        Filtering the canonical (job, file)-sorted, de-duplicated access
        columns preserves both properties, so the result adopts the
        filtered columns zero-copy via the ``canonical`` fast path.
        """
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.n_accesses:
            raise ValueError(
                f"mask length {len(mask)} != number of accesses "
                f"{self.n_accesses}"
            )
        return Trace(
            file_sizes=self.file_sizes,
            file_tiers=self.file_tiers,
            file_datasets=self.file_datasets,
            job_users=self.job_users,
            job_nodes=self.job_nodes,
            job_tiers=self.job_tiers,
            job_starts=self.job_starts,
            job_ends=self.job_ends,
            access_jobs=self.access_jobs[mask],
            access_files=self.access_files[mask],
            user_domains=self.user_domains,
            node_sites=self.node_sites,
            node_domains=self.node_domains,
            site_names=self.site_names,
            domain_names=self.domain_names,
            job_labels=self.job_labels,
            validate=False,
            canonical=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(jobs={self.n_jobs}, files={self.n_files}, "
            f"accesses={self.n_accesses}, users={self.n_users}, "
            f"sites={self.n_sites}, domains={self.n_domains})"
        )
