"""Trace manipulation: subsampling, time shifting, concatenation.

Utilities for building experiment inputs out of existing traces:

* :func:`subsample_jobs` — keep a random fraction of jobs, the exact
  setup of §6's "larger filecules are identified when only a part of the
  jobs submitted ... are considered";
* :func:`shift_time` — translate all timestamps (align epochs, splice
  windows);
* :func:`concat_traces` — append the jobs of several traces over the
  *same* catalog (same files/users/nodes/sites/domains), e.g. stitching
  per-period exports back together.
"""

from __future__ import annotations

import numpy as np

from repro.traces.trace import Trace
from repro.util.rng import SeedLike, as_generator


def subsample_jobs(trace: Trace, fraction: float, seed: SeedLike = 0) -> Trace:
    """Keep each job independently with probability ``fraction``.

    Deterministic given (trace, fraction, seed).  File/user/node catalogs
    are preserved, so filecules identified on the sample are directly
    comparable to the full trace's (see :mod:`repro.core.partial`).
    """
    if not 0 <= fraction <= 1:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = as_generator(seed)
    mask = rng.random(trace.n_jobs) < fraction
    return trace.subset_jobs(mask)


def shift_time(trace: Trace, offset_seconds: float) -> Trace:
    """Translate every job's start/end by ``offset_seconds``.

    Offsets that would push any start below zero are rejected (trace
    timestamps are defined relative to the window start).
    """
    starts = trace.job_starts + offset_seconds
    if trace.n_jobs and starts.min() < 0:
        raise ValueError(
            f"offset {offset_seconds} pushes job starts below zero"
        )
    return Trace(
        file_sizes=trace.file_sizes,
        file_tiers=trace.file_tiers,
        file_datasets=trace.file_datasets,
        job_users=trace.job_users,
        job_nodes=trace.job_nodes,
        job_tiers=trace.job_tiers,
        job_starts=starts,
        job_ends=trace.job_ends + offset_seconds,
        access_jobs=trace.access_jobs,
        access_files=trace.access_files,
        user_domains=trace.user_domains,
        node_sites=trace.node_sites,
        node_domains=trace.node_domains,
        site_names=trace.site_names,
        domain_names=trace.domain_names,
        job_labels=trace.job_labels,
        validate=False,
    )


def _same_catalog(a: Trace, b: Trace) -> bool:
    return (
        a.n_files == b.n_files
        and np.array_equal(a.file_sizes, b.file_sizes)
        and np.array_equal(a.file_tiers, b.file_tiers)
        and a.n_users == b.n_users
        and np.array_equal(a.user_domains, b.user_domains)
        and np.array_equal(a.node_sites, b.node_sites)
        and np.array_equal(a.node_domains, b.node_domains)
        and a.site_names == b.site_names
        and a.domain_names == b.domain_names
    )


def concat_traces(traces: list[Trace]) -> Trace:
    """Append the jobs of several traces sharing one catalog.

    Jobs are renumbered in concatenation order and re-sorted by start
    time by the caller if needed (job ids follow input order here, so
    chronological inputs stay chronological).  ``job_labels`` are kept,
    so provenance back to the source traces survives.
    """
    if not traces:
        raise ValueError("need at least one trace")
    first = traces[0]
    for other in traces[1:]:
        if not _same_catalog(first, other):
            raise ValueError(
                "traces must share an identical file/user/node catalog"
            )
    offsets = np.cumsum([0] + [t.n_jobs for t in traces[:-1]])
    return Trace(
        file_sizes=first.file_sizes,
        file_tiers=first.file_tiers,
        file_datasets=first.file_datasets,
        job_users=np.concatenate([t.job_users for t in traces]),
        job_nodes=np.concatenate([t.job_nodes for t in traces]),
        job_tiers=np.concatenate([t.job_tiers for t in traces]),
        job_starts=np.concatenate([t.job_starts for t in traces]),
        job_ends=np.concatenate([t.job_ends for t in traces]),
        access_jobs=np.concatenate(
            [t.access_jobs + off for t, off in zip(traces, offsets)]
        ),
        access_files=np.concatenate([t.access_files for t in traces]),
        user_domains=first.user_domains,
        node_sites=first.node_sites,
        node_domains=first.node_domains,
        site_names=first.site_names,
        domain_names=first.domain_names,
        job_labels=np.concatenate([t.job_labels for t in traces]),
    )


def shuffled_null(trace: Trace, seed: SeedLike = 0) -> Trace:
    """The null model: destroy co-access structure, keep the marginals.

    Randomly permutes the file column of the access table, preserving
    each job's input-set *size* and each file's request count while
    erasing which files appear together.  Under this null, filecules
    should collapse to (mostly) single files and every filecule-granular
    advantage should vanish — the falsifiability control for the whole
    pipeline: if an analysis still "finds" structure here, the analysis
    is broken, not the workload.

    Duplicate (job, file) pairs created by the permutation are merged by
    the Trace constructor, so the access count shrinks by the collision
    mass (a few percent at default scale, more on tiny catalogs where
    hot files repeat within a job); the preserved-marginals statement is
    exact only up to those merges.
    """
    rng = as_generator(seed)
    permuted = trace.access_files[rng.permutation(trace.n_accesses)]
    return Trace(
        file_sizes=trace.file_sizes,
        file_tiers=trace.file_tiers,
        file_datasets=trace.file_datasets,
        job_users=trace.job_users,
        job_nodes=trace.job_nodes,
        job_tiers=trace.job_tiers,
        job_starts=trace.job_starts,
        job_ends=trace.job_ends,
        access_jobs=trace.access_jobs,
        access_files=permuted,
        user_domains=trace.user_domains,
        node_sites=trace.node_sites,
        node_domains=trace.node_domains,
        site_names=trace.site_names,
        domain_names=trace.domain_names,
        job_labels=trace.job_labels,
    )
