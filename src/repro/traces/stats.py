"""Vectorized trace statistics backing Tables 1–2 and Figures 1–3.

Everything in this module is a pure function of a :class:`Trace`; the
experiment modules only format what is computed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.traces.records import (
    TIER_OTHER,
    TIER_RECONSTRUCTED,
    TIER_ROOTTUPLE,
    TIER_THUMBNAIL,
    tier_name,
)
from repro.traces.trace import Trace
from repro.util.timeutil import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.util.units import GB, MB


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Headline numbers of a trace (paper §1: 234k jobs, 1.13M files, ...)."""

    n_jobs: int
    n_jobs_with_files: int
    n_users: int
    n_sites: int
    n_domains: int
    n_files_accessed: int
    n_accesses: int
    total_bytes_accessed: int
    mean_files_per_job: float
    span_days: float

    def __str__(self) -> str:
        return (
            f"{self.n_jobs} jobs ({self.n_jobs_with_files} with file traces) "
            f"by {self.n_users} users from {self.n_domains} domains; "
            f"{self.n_accesses} accesses to {self.n_files_accessed} files "
            f"({self.total_bytes_accessed / GB:.1f} GB), "
            f"{self.mean_files_per_job:.1f} files/job over {self.span_days:.0f} days"
        )


def summarize(trace: Trace) -> TraceSummary:
    """Compute the headline characteristics of a trace."""
    with_files = trace.files_per_job > 0
    t_lo, t_hi = trace.time_span()
    n_with = int(with_files.sum())
    return TraceSummary(
        n_jobs=trace.n_jobs,
        n_jobs_with_files=n_with,
        n_users=len(np.unique(trace.job_users)) if trace.n_jobs else 0,
        n_sites=len(np.unique(trace.job_sites)) if trace.n_jobs else 0,
        n_domains=len(np.unique(trace.job_domains)) if trace.n_jobs else 0,
        n_files_accessed=len(trace.accessed_file_ids),
        n_accesses=trace.n_accesses,
        total_bytes_accessed=trace.total_bytes(),
        mean_files_per_job=(
            float(trace.files_per_job[with_files].mean()) if n_with else 0.0
        ),
        span_days=(t_hi - t_lo) / SECONDS_PER_DAY,
    )


#: Tier order of the paper's Table 1.
TABLE1_TIERS: tuple[int, ...] = (
    TIER_RECONSTRUCTED,
    TIER_ROOTTUPLE,
    TIER_THUMBNAIL,
    TIER_OTHER,
)


def tier_table(trace: Trace) -> list[dict]:
    """Per-tier rows of Table 1 plus the "All" row.

    Columns: users, jobs, distinct files, mean input per job (MB) and mean
    wall time per job (hours).  Tiers without file traces (``other``) get
    ``None`` for the file-derived columns, matching the paper's "N/A".
    """
    rows: list[dict] = []
    for tier in TABLE1_TIERS:
        mask = trace.job_tiers == tier
        n_jobs = int(mask.sum())
        row: dict = {
            "tier": tier_name(tier).capitalize(),
            "users": int(len(np.unique(trace.job_users[mask]))) if n_jobs else 0,
            "jobs": n_jobs,
            "files": None,
            "input_mb": None,
            "hours": None,
        }
        if n_jobs:
            row["hours"] = float(
                (trace.job_ends[mask] - trace.job_starts[mask]).mean()
                / SECONDS_PER_HOUR
            )
            tier_files = np.unique(trace.access_files[mask[trace.access_jobs]])
            if len(tier_files):
                row["files"] = int(len(tier_files))
                row["input_mb"] = float(trace.job_input_bytes[mask].mean() / MB)
        rows.append(row)
    # "All" row over every job, file columns aggregated over traced jobs.
    all_row: dict = {
        "tier": "All",
        "users": int(len(np.unique(trace.job_users))) if trace.n_jobs else 0,
        "jobs": trace.n_jobs,
        "files": None,
        "input_mb": None,
        "hours": (
            float((trace.job_ends - trace.job_starts).mean() / SECONDS_PER_HOUR)
            if trace.n_jobs
            else None
        ),
    }
    rows.append(all_row)
    return rows


def domain_table(
    trace: Trace,
    filecule_counter: Callable[[Trace], int] | None = None,
) -> list[dict]:
    """Per-domain rows of Table 2, sorted by job count (descending).

    Columns: jobs, submission nodes, sites, users, filecules (if a counter
    is supplied — typically ``lambda t: len(find_filecules(t))`` — kept as a
    callable to avoid coupling the trace layer to :mod:`repro.core`),
    distinct files, and total accessed data in GB.
    """
    rows: list[dict] = []
    for code, name in enumerate(trace.domain_names):
        mask = trace.job_domains == code
        n_jobs = int(mask.sum())
        if n_jobs == 0:
            continue
        sub = trace.subset_jobs(mask)
        files = sub.accessed_file_ids
        rows.append(
            {
                "domain": name,
                "jobs": n_jobs,
                "nodes": int(len(np.unique(trace.job_nodes[mask]))),
                "sites": int(len(np.unique(trace.job_sites[mask]))),
                "users": int(len(np.unique(trace.job_users[mask]))),
                "filecules": (
                    int(filecule_counter(sub)) if filecule_counter else None
                ),
                "files": int(len(files)),
                "data_gb": float(sub.total_bytes() / GB),
            }
        )
    rows.sort(key=lambda r: r["jobs"], reverse=True)
    return rows


def files_per_job_distribution(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """(distinct file counts, number of jobs with that count) — Figure 1.

    Only jobs with file traces participate (the paper's Figure 1 covers the
    115,895 traced jobs).
    """
    per_job = trace.files_per_job
    per_job = per_job[per_job > 0]
    return np.unique(per_job, return_counts=True)


def daily_activity(trace: Trace) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(day index, jobs started, file requests issued) per day — Figure 2."""
    if trace.n_jobs == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    job_days = (trace.job_starts // SECONDS_PER_DAY).astype(np.int64)
    n_days = int(job_days.max()) + 1
    jobs_per_day = np.bincount(job_days, minlength=n_days)
    requests_per_day = np.bincount(
        job_days[trace.access_jobs],
        minlength=n_days,
    )
    days = np.arange(n_days, dtype=np.int64)
    return days, jobs_per_day, requests_per_day


def file_size_distribution(
    trace: Trace, accessed_only: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """(distinct sizes, file counts) — Figure 3.

    By default only files that appear in the trace are counted, matching
    the paper (its catalog *is* the set of requested files).
    """
    sizes = trace.file_sizes
    if accessed_only:
        sizes = sizes[trace.accessed_file_ids]
    return np.unique(sizes, return_counts=True)
