"""Trace filtering: per-tier, per-domain, per-site, per-time sub-traces.

All filters go through :meth:`repro.traces.Trace.subset_jobs`, which keeps
the file/user/node catalogs intact — file ids remain globally comparable,
which the per-tier figures (6–8) and the §6 partial-knowledge experiments
rely on.
"""

from __future__ import annotations

import numpy as np

from repro.traces.records import tier_code
from repro.traces.trace import Trace


def filter_jobs(trace: Trace, mask: np.ndarray) -> Trace:
    """Keep jobs where ``mask`` is True (thin alias of ``subset_jobs``)."""
    return trace.subset_jobs(mask)


def filter_by_tier(trace: Trace, tier: str | int) -> Trace:
    """Keep jobs whose dataset belongs to the given data tier."""
    code = tier_code(tier)
    return trace.subset_jobs(trace.job_tiers == code)


def filter_by_domain(trace: Trace, domain: str | int) -> Trace:
    """Keep jobs submitted from nodes in the given Internet domain.

    ``domain`` may be a name from ``trace.domain_names`` (e.g. ``".gov"``)
    or a domain code.
    """
    if isinstance(domain, str):
        try:
            code = trace.domain_names.index(domain)
        except ValueError:
            raise ValueError(
                f"unknown domain {domain!r}; trace has {trace.domain_names}"
            ) from None
    else:
        code = domain
        if not 0 <= code < trace.n_domains:
            raise ValueError(f"domain code out of range: {code}")
    return trace.subset_jobs(trace.job_domains == code)


def filter_by_site(trace: Trace, site: str | int) -> Trace:
    """Keep jobs submitted from nodes at the given site."""
    if isinstance(site, str):
        try:
            code = trace.site_names.index(site)
        except ValueError:
            raise ValueError(
                f"unknown site {site!r}; trace has {len(trace.site_names)} sites"
            ) from None
    else:
        code = site
        if not 0 <= code < trace.n_sites:
            raise ValueError(f"site code out of range: {code}")
    return trace.subset_jobs(trace.job_sites == code)


def filter_by_time(trace: Trace, start: float, end: float) -> Trace:
    """Keep jobs that *start* within ``[start, end)`` seconds."""
    if end < start:
        raise ValueError(f"time window end {end} precedes start {start}")
    mask = (trace.job_starts >= start) & (trace.job_starts < end)
    return trace.subset_jobs(mask)


def split_epochs(trace: Trace, n_epochs: int) -> list[Trace]:
    """Split the trace window into ``n_epochs`` equal-duration sub-traces.

    Used by the filecule-dynamics study (paper §8 future work: "analyze
    filecules formed at different times").  Every job lands in exactly one
    epoch, bucketed by its start time; the final epoch is closed on the
    right so the last job is not dropped.
    """
    if n_epochs < 1:
        raise ValueError(f"need at least one epoch, got {n_epochs}")
    t_lo, t_hi = trace.time_span()
    edges = np.linspace(t_lo, t_hi, n_epochs + 1)
    epochs = []
    for k in range(n_epochs):
        if k == n_epochs - 1:
            mask = (trace.job_starts >= edges[k]) & (trace.job_starts <= edges[k + 1])
        else:
            mask = (trace.job_starts >= edges[k]) & (trace.job_starts < edges[k + 1])
        epochs.append(trace.subset_jobs(mask))
    return epochs
