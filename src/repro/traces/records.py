"""Record types and data-tier vocabulary for SAM-style traces.

SAM organizes physics data in "tiers" defined by the format of the physics
events (paper §2.2): *raw* detector output, *reconstructed* and *thumbnail*
outputs of the reconstruction pass, and *root-tuple* highly-processed
events.  Jobs whose dataset tier is not one of these (monte-carlo
configuration, calibration, …) are bucketed as *other*, mirroring the
"Others" row of Table 1 — those jobs carry no file-level trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Tier codes.  Stable small ints so tier columns fit in ``int16``.
TIER_RAW: int = 0
TIER_RECONSTRUCTED: int = 1
TIER_THUMBNAIL: int = 2
TIER_ROOTTUPLE: int = 3
TIER_OTHER: int = 4

#: Canonical tier spelling, indexable by tier code.
TIER_NAMES: tuple[str, ...] = (
    "raw",
    "reconstructed",
    "thumbnail",
    "root-tuple",
    "other",
)

_TIER_ALIASES = {
    "raw": TIER_RAW,
    "reconstructed": TIER_RECONSTRUCTED,
    "reco": TIER_RECONSTRUCTED,
    "thumbnail": TIER_THUMBNAIL,
    "tmb": TIER_THUMBNAIL,
    "root-tuple": TIER_ROOTTUPLE,
    "roottuple": TIER_ROOTTUPLE,
    "root_tuple": TIER_ROOTTUPLE,
    "other": TIER_OTHER,
    "others": TIER_OTHER,
}


def tier_code(name: str | int) -> int:
    """Map a tier name (or already-valid code) to its integer code."""
    if isinstance(name, int):
        if 0 <= name < len(TIER_NAMES):
            return name
        raise ValueError(f"tier code out of range: {name}")
    try:
        return _TIER_ALIASES[name.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown data tier: {name!r}") from None


def tier_name(code: int) -> str:
    """Map a tier code to its canonical name."""
    if not 0 <= code < len(TIER_NAMES):
        raise ValueError(f"tier code out of range: {code}")
    return TIER_NAMES[code]


@dataclass(frozen=True, slots=True)
class FileMeta:
    """Row view of one file in a trace (convenience object, not storage).

    Attributes mirror the SAM file catalog fields the paper's analysis
    needs: a stable integer id, the logical file name, size in bytes, the
    data tier, and the id of the dataset the file was produced into.
    """

    file_id: int
    name: str
    size_bytes: int
    tier: int
    dataset_id: int

    @property
    def tier_label(self) -> str:
        return tier_name(self.tier)


@dataclass(frozen=True, slots=True)
class JobMeta:
    """Row view of one job ("project" in SAM terminology).

    ``file_ids`` is the job's full input set — jobs in this workload read
    whole datasets (paper §2.2: "an application running on a dataset
    defines a job").  Jobs of tier *other* have an empty input set, like
    the half of the paper's jobs for which no file trace exists.
    """

    job_id: int
    user_id: int
    node_id: int
    site_id: int
    domain_id: int
    tier: int
    start_time: float
    end_time: float
    file_ids: tuple[int, ...] = field(default=())

    @property
    def duration_hours(self) -> float:
        return (self.end_time - self.start_time) / 3600.0

    @property
    def tier_label(self) -> str:
        return tier_name(self.tier)
