"""SAM-style trace schema, container, I/O, filtering and statistics.

The DZero experiment logs two kinds of traces through the SAM data-handling
middleware (paper §2.3):

* **file traces** — which files each job ("project") requested, and
* **application traces** — job metadata: user, submission node, start/stop
  time, application family and data tier.

:class:`repro.traces.Trace` holds both, column-oriented on numpy arrays so
that the workload characterization of §3 is fully vectorized.  Real SAM
exports can be loaded via :mod:`repro.traces.io`; the calibrated synthetic
generator in :mod:`repro.workload` produces the same structure.
"""

from repro.traces.records import (
    TIER_RAW,
    TIER_RECONSTRUCTED,
    TIER_ROOTTUPLE,
    TIER_THUMBNAIL,
    TIER_OTHER,
    TIER_NAMES,
    tier_code,
    tier_name,
    FileMeta,
    JobMeta,
)
from repro.traces.trace import Trace, TraceValidationError
from repro.traces.io import (
    TraceFormatError,
    write_trace_csv,
    read_trace_csv,
    write_trace_jsonl,
    read_trace_jsonl,
)
from repro.traces.combine import (
    concat_traces,
    shift_time,
    shuffled_null,
    subsample_jobs,
)
from repro.traces.filters import (
    filter_jobs,
    filter_by_tier,
    filter_by_domain,
    filter_by_time,
    filter_by_site,
    split_epochs,
)
from repro.traces.stats import (
    TraceSummary,
    summarize,
    tier_table,
    domain_table,
    files_per_job_distribution,
    daily_activity,
    file_size_distribution,
)

__all__ = [
    "TIER_RAW",
    "TIER_RECONSTRUCTED",
    "TIER_ROOTTUPLE",
    "TIER_THUMBNAIL",
    "TIER_OTHER",
    "TIER_NAMES",
    "tier_code",
    "tier_name",
    "FileMeta",
    "JobMeta",
    "Trace",
    "TraceValidationError",
    "TraceFormatError",
    "write_trace_csv",
    "read_trace_csv",
    "write_trace_jsonl",
    "read_trace_jsonl",
    "concat_traces",
    "shift_time",
    "shuffled_null",
    "subsample_jobs",
    "filter_jobs",
    "filter_by_tier",
    "filter_by_domain",
    "filter_by_time",
    "filter_by_site",
    "split_epochs",
    "TraceSummary",
    "summarize",
    "tier_table",
    "domain_table",
    "files_per_job_distribution",
    "daily_activity",
    "file_size_distribution",
]
