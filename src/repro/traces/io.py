"""Trace serialization: directory-of-CSV and single-file JSONL formats.

Two interchange formats are provided so real SAM history exports can be
brought into the toolkit:

* **CSV directory** (``write_trace_csv`` / ``read_trace_csv``) — one file
  per table (``files.csv``, ``jobs.csv``, ``accesses.csv``, ``users.csv``,
  ``nodes.csv``) plus ``meta.json`` with the site/domain name tables.  This
  matches how database dumps usually arrive and scales to millions of rows.
* **JSONL** (``write_trace_jsonl`` / ``read_trace_jsonl``) — one
  self-contained line-delimited JSON file where each job row embeds its
  input file list.  Convenient for small fixtures and for shipping example
  traces inside a repository.

Both round-trip exactly: ``read(write(t))`` reproduces every column.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.traces.trace import Trace

_CSV_TABLES = ("files", "jobs", "accesses", "users", "nodes")


class TraceFormatError(ValueError):
    """A trace file/directory that cannot be parsed.

    Raised with file (and, for line-oriented formats, line) context in
    the message, so a malformed multi-gigabyte export points at the
    offending row instead of surfacing an opaque ``KeyError`` or
    ``json.JSONDecodeError`` from deep inside the reader.
    """


def _require_keys(record: dict, keys: tuple[str, ...], where: str) -> None:
    missing = [k for k in keys if k not in record]
    if missing:
        raise TraceFormatError(f"{where}: record is missing keys {missing}")


def write_trace_csv(trace: Trace, directory: str | Path) -> Path:
    """Write ``trace`` as a directory of CSV tables; returns the directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / "files.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["file_id", "size_bytes", "tier", "dataset_id"])
        for i in range(trace.n_files):
            writer.writerow(
                [
                    i,
                    int(trace.file_sizes[i]),
                    int(trace.file_tiers[i]),
                    int(trace.file_datasets[i]),
                ]
            )

    with open(directory / "jobs.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["job_id", "label", "user_id", "node_id", "tier", "start", "end"]
        )
        for j in range(trace.n_jobs):
            writer.writerow(
                [
                    j,
                    int(trace.job_labels[j]),
                    int(trace.job_users[j]),
                    int(trace.job_nodes[j]),
                    int(trace.job_tiers[j]),
                    repr(float(trace.job_starts[j])),
                    repr(float(trace.job_ends[j])),
                ]
            )

    with open(directory / "accesses.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["job_id", "file_id"])
        for j, f in zip(trace.access_jobs, trace.access_files):
            writer.writerow([int(j), int(f)])

    with open(directory / "users.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["user_id", "domain_id"])
        for u in range(trace.n_users):
            writer.writerow([u, int(trace.user_domains[u])])

    with open(directory / "nodes.csv", "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["node_id", "site_id", "domain_id"])
        for n in range(trace.n_nodes):
            writer.writerow(
                [n, int(trace.node_sites[n]), int(trace.node_domains[n])]
            )

    with open(directory / "meta.json", "w") as fh:
        json.dump(
            {
                "format": "repro-trace-csv",
                "version": 1,
                "site_names": list(trace.site_names),
                "domain_names": list(trace.domain_names),
            },
            fh,
            indent=2,
        )
    return directory


def _read_csv_columns(path: Path, expected_header: list[str]) -> list[list[str]]:
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != expected_header:
            raise TraceFormatError(
                f"{path.name}: unexpected header {header!r}, "
                f"expected {expected_header!r}"
            )
        rows = list(reader)
    for i, row in enumerate(rows, 2):  # line 1 is the header
        if len(row) != len(expected_header):
            raise TraceFormatError(
                f"{path.name}:{i}: expected {len(expected_header)} "
                f"columns, got {len(row)}"
            )
    if not rows:
        return [[] for _ in expected_header]
    cols = list(map(list, zip(*rows)))
    return cols


def read_trace_csv(directory: str | Path) -> Trace:
    """Load a trace previously written by :func:`write_trace_csv`."""
    directory = Path(directory)
    missing = [t for t in _CSV_TABLES if not (directory / f"{t}.csv").exists()]
    if missing:
        raise TraceFormatError(
            f"{directory}: missing required table(s) "
            f"{', '.join(f'{t}.csv' for t in missing)}"
        )
    if not (directory / "meta.json").exists():
        raise TraceFormatError(f"{directory}: missing meta.json")
    with open(directory / "meta.json") as fh:
        try:
            meta = json.load(fh)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"{directory / 'meta.json'}: malformed JSON: {exc}"
            ) from exc
    if meta.get("format") != "repro-trace-csv":
        raise TraceFormatError(f"{directory}: not a repro trace directory")
    _require_keys(meta, ("site_names", "domain_names"), str(directory / "meta.json"))

    fcols = _read_csv_columns(
        directory / "files.csv", ["file_id", "size_bytes", "tier", "dataset_id"]
    )
    jcols = _read_csv_columns(
        directory / "jobs.csv",
        ["job_id", "label", "user_id", "node_id", "tier", "start", "end"],
    )
    acols = _read_csv_columns(directory / "accesses.csv", ["job_id", "file_id"])
    ucols = _read_csv_columns(directory / "users.csv", ["user_id", "domain_id"])
    ncols = _read_csv_columns(
        directory / "nodes.csv", ["node_id", "site_id", "domain_id"]
    )

    return Trace(
        file_sizes=np.array(fcols[1], dtype=np.int64),
        file_tiers=np.array(fcols[2], dtype=np.int16),
        file_datasets=np.array(fcols[3], dtype=np.int32),
        job_users=np.array(jcols[2], dtype=np.int32),
        job_nodes=np.array(jcols[3], dtype=np.int32),
        job_tiers=np.array(jcols[4], dtype=np.int16),
        job_starts=np.array(jcols[5], dtype=np.float64),
        job_ends=np.array(jcols[6], dtype=np.float64),
        access_jobs=np.array(acols[0], dtype=np.int64),
        access_files=np.array(acols[1], dtype=np.int64),
        user_domains=np.array(ucols[1], dtype=np.int16),
        node_sites=np.array(ncols[1], dtype=np.int32),
        node_domains=np.array(ncols[2], dtype=np.int16),
        site_names=meta["site_names"],
        domain_names=meta["domain_names"],
        job_labels=np.array(jcols[1], dtype=np.int64),
    )


def write_trace_jsonl(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` as one line-delimited JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(
            json.dumps(
                {
                    "type": "meta",
                    "format": "repro-trace-jsonl",
                    "version": 1,
                    "site_names": list(trace.site_names),
                    "domain_names": list(trace.domain_names),
                    "user_domains": trace.user_domains.tolist(),
                    "node_sites": trace.node_sites.tolist(),
                    "node_domains": trace.node_domains.tolist(),
                }
            )
            + "\n"
        )
        for i in range(trace.n_files):
            fh.write(
                json.dumps(
                    {
                        "type": "file",
                        "id": i,
                        "size": int(trace.file_sizes[i]),
                        "tier": int(trace.file_tiers[i]),
                        "dataset": int(trace.file_datasets[i]),
                    }
                )
                + "\n"
            )
        for j in range(trace.n_jobs):
            fh.write(
                json.dumps(
                    {
                        "type": "job",
                        "id": j,
                        "label": int(trace.job_labels[j]),
                        "user": int(trace.job_users[j]),
                        "node": int(trace.job_nodes[j]),
                        "tier": int(trace.job_tiers[j]),
                        "start": float(trace.job_starts[j]),
                        "end": float(trace.job_ends[j]),
                        "files": [int(f) for f in trace.job_files(j)],
                    }
                )
                + "\n"
            )
    return path


def read_trace_jsonl(path: str | Path) -> Trace:
    """Load a trace previously written by :func:`write_trace_jsonl`."""
    meta = None
    files: list[dict] = []
    jobs: list[dict] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: malformed JSONL line: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise TraceFormatError(
                    f"{path}:{lineno}: expected a JSON object, "
                    f"got {type(record).__name__}"
                )
            kind = record.get("type")
            where = f"{path}:{lineno}"
            if kind == "meta":
                _require_keys(
                    record,
                    (
                        "site_names",
                        "domain_names",
                        "user_domains",
                        "node_sites",
                        "node_domains",
                    ),
                    where,
                )
                meta = record
            elif kind == "file":
                _require_keys(record, ("id", "size", "tier", "dataset"), where)
                files.append(record)
            elif kind == "job":
                _require_keys(
                    record,
                    ("id", "label", "user", "node", "tier", "start", "end", "files"),
                    where,
                )
                jobs.append(record)
            else:
                raise TraceFormatError(
                    f"{path}:{lineno}: unknown record type {kind!r}"
                )
    if meta is None:
        raise TraceFormatError(f"{path}: missing meta record")
    if meta.get("format") != "repro-trace-jsonl":
        raise TraceFormatError(f"{path}: not a repro jsonl trace")
    files.sort(key=lambda r: r["id"])
    jobs.sort(key=lambda r: r["id"])
    if [r["id"] for r in files] != list(range(len(files))):
        raise TraceFormatError(f"{path}: file ids are not dense 0..n-1")
    if [r["id"] for r in jobs] != list(range(len(jobs))):
        raise TraceFormatError(f"{path}: job ids are not dense 0..n-1")

    access_jobs: list[int] = []
    access_files: list[int] = []
    for r in jobs:
        access_jobs.extend([r["id"]] * len(r["files"]))
        access_files.extend(r["files"])

    return Trace(
        file_sizes=[r["size"] for r in files],
        file_tiers=[r["tier"] for r in files],
        file_datasets=[r["dataset"] for r in files],
        job_users=[r["user"] for r in jobs],
        job_nodes=[r["node"] for r in jobs],
        job_tiers=[r["tier"] for r in jobs],
        job_starts=[r["start"] for r in jobs],
        job_ends=[r["end"] for r in jobs],
        access_jobs=access_jobs,
        access_files=access_files,
        user_domains=meta["user_domains"],
        node_sites=meta["node_sites"],
        node_domains=meta["node_domains"],
        site_names=meta["site_names"],
        domain_names=meta["domain_names"],
        job_labels=[r["label"] for r in jobs],
    )
