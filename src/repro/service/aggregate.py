"""Cross-worker aggregation over per-worker admin HTTP endpoints.

A pre-fork cluster (:mod:`repro.service.cluster`) has no shared state:
worker ``k`` serves its own view on admin port ``base + k``.  This module
is the read side — it fans requests out over those ports and merges the
answers into one cluster-wide view:

* **partition** — per-worker partitions merge with the §6 meet
  (:func:`repro.service.shard.merge_partition_payloads`); because each
  worker observed a disjoint slice of the job stream, the merge equals
  what a single observer of everything would have identified;
* **metrics** — per-worker ``/registry`` payloads (full-fidelity
  :meth:`MetricsRegistry.state_dict`, bucket-exact histograms) rebuild
  into registries and fold together with :meth:`MetricsRegistry.merge`;
* **stats** — scalar counts sum; per-site advisor counters sum (with
  hit rates recomputed from the summed counts, since the same site's
  traffic reaches every worker the kernel routed its connections to).

Used by ``repro-top --workers N``, ``repro-serve metrics --worker``/
``--aggregate`` and the service benchmark's multi-worker equivalence
gate.
"""

from __future__ import annotations

import json
import urllib.request

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder
from repro.service.shard import merge_partition_payloads

#: Per-request timeout for one admin fetch.
FETCH_TIMEOUT = 5.0


def fetch_json(host: str, port: int, path: str, timeout: float = FETCH_TIMEOUT):
    """GET ``http://host:port{path}`` and decode the JSON body."""
    url = f"http://{host}:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode())


def fetch_text(host: str, port: int, path: str, timeout: float = FETCH_TIMEOUT) -> str:
    """GET ``http://host:port{path}`` and return the raw text body."""
    url = f"http://{host}:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode()


def worker_ports(base: int, workers: int) -> list[int]:
    """The admin-port layout of a ``--workers N --metrics-port base`` run."""
    return [base + index for index in range(workers)]


def aggregate_partition(host: str, ports: list[int]) -> dict:
    """Merged partition payload across all workers' ``/partition`` views."""
    return merge_partition_payloads(
        [fetch_json(host, port, "/partition") for port in ports]
    )


def aggregate_registry(host: str, ports: list[int]) -> MetricsRegistry:
    """One registry folding every worker's ``/registry`` state together."""
    merged = MetricsRegistry()
    merged.merge(
        *(
            MetricsRegistry.from_state_dict(fetch_json(host, port, "/registry"))
            for port in ports
        )
    )
    return merged


def _merge_sites(per_worker_sites: list[dict]) -> dict:
    """Sum per-site advisor counters across workers; recompute rates.

    With kernel connection balancing, one site's jobs reach several
    workers, each modelling its own advisor cache for that site — so
    requests/hits/bytes sum, and the rates are recomputed from the sums.
    Occupancy (``used_bytes``) also sums: it is the total footprint the
    site's traffic pinned across all worker cache models.
    """
    merged: dict[str, dict] = {}
    for sites in per_worker_sites:
        for site, adv in sites.items():
            into = merged.get(site)
            if into is None:
                merged[site] = {
                    "policy": adv["policy"],
                    "requests": adv["requests"],
                    "hits": adv["hits"],
                    "used_bytes": adv["used_bytes"],
                    "_miss_bytes": adv["byte_miss_rate"] * _requested_bytes(adv),
                    "_requested_bytes": _requested_bytes(adv),
                }
            else:
                into["requests"] += adv["requests"]
                into["hits"] += adv["hits"]
                into["used_bytes"] += adv["used_bytes"]
                into["_miss_bytes"] += adv["byte_miss_rate"] * _requested_bytes(adv)
                into["_requested_bytes"] += _requested_bytes(adv)
    for adv in merged.values():
        requests = adv["requests"]
        requested_bytes = adv.pop("_requested_bytes")
        miss_bytes = adv.pop("_miss_bytes")
        adv["hit_rate"] = adv["hits"] / requests if requests else 0.0
        adv["byte_miss_rate"] = (
            miss_bytes / requested_bytes if requested_bytes else 0.0
        )
    return dict(sorted(merged.items(), key=lambda kv: int(kv[0])))


def _requested_bytes(adv: dict) -> float:
    # The stats payload exposes rates, not raw byte totals; weight the
    # byte-miss-rate average by request count as the best available proxy
    # when workers did not report byte volumes.
    return float(adv.get("requested_bytes", adv["requests"]))


def aggregate_history(host: str, ports: list[int]) -> dict:
    """Cluster-wide ``history`` payload merged from every worker.

    Per-worker flight-recorder series rebuild into
    :class:`~repro.obs.timeseries.TimeSeriesRecorder` instances and fold
    with the slot-aligned :meth:`~repro.obs.timeseries.TimeSeriesRecorder.merge`
    (sums add, means combine weighted, maxima max) — so the cluster view
    has the same shape a single worker serves, and ``repro-top
    --workers`` renders it unchanged.  Health events concatenate in
    timestamp order.
    """
    payloads = [fetch_json(host, port, "/history") for port in ports]
    recorders = [TimeSeriesRecorder.from_state_dict(p) for p in payloads]
    merged = recorders[0].merge(*recorders[1:]) if recorders else TimeSeriesRecorder()
    events = sorted(
        (
            event
            for payload in payloads
            for event in payload.get("health", {}).get("events", [])
        ),
        key=lambda e: e.get("ts", 0.0),
    )
    result = merged.state_dict()
    result["enabled"] = any(p.get("enabled") for p in payloads)
    result["health"] = {
        "enabled": any(p.get("health", {}).get("enabled") for p in payloads),
        "events": events,
    }
    result["workers"] = len(payloads)
    return result


def aggregate_spans(host: str, ports: list[int]) -> dict:
    """Every worker's live span ring buffer, concatenated in time order.

    Each span dict gains a ``worker`` key naming its origin; ``dropped``
    and ``capacity`` sum across workers.
    """
    payloads = [fetch_json(host, port, "/spans") for port in ports]
    spans: list[dict] = []
    for index, payload in enumerate(payloads):
        worker = payload.get("worker", index)
        for span in payload.get("spans", []):
            span.setdefault("worker", worker)
            spans.append(span)
    spans.sort(key=lambda s: s.get("ts", 0.0))
    return {
        "capacity": sum(p.get("capacity", 0) for p in payloads),
        "dropped": sum(p.get("dropped", 0) for p in payloads),
        "count": len(spans),
        "spans": spans,
        "workers": len(payloads),
    }


def aggregate_stats(host: str, ports: list[int]) -> dict:
    """Cluster-wide ``stats`` payload merged from every worker.

    Shape-compatible with the single-server ``stats`` op result (so
    ``repro-top`` renders it unchanged), plus a ``workers`` list with
    each worker's contribution.
    """
    per_worker = [fetch_json(host, port, "/stats") for port in ports]
    partition = merge_partition_payloads(
        [fetch_json(host, port, "/partition") for port in ports]
    )
    registry = aggregate_registry(host, ports)
    files_observed = len(
        {f for cls in partition["classes"] for f in cls["files"]}
    )
    top = sorted(
        partition["classes"], key=lambda c: -c["requests"]
    )[:10]
    return {
        "policy": per_worker[0]["policy"] if per_worker else "?",
        "capacity_bytes": per_worker[0]["capacity_bytes"] if per_worker else 0,
        "jobs_observed": sum(s["jobs_observed"] for s in per_worker),
        "files_observed": files_observed,
        "n_classes": partition["n_classes"],
        "partition_checksum": partition["checksum"],
        "top_filecules": [
            {
                "class_id": i,
                "files": cls["files"],
                "n_files": len(cls["files"]),
                "requests": cls["requests"],
                "bytes": 0,  # sizes live in worker catalogs, not merged here
            }
            for i, cls in enumerate(top)
        ],
        "sites": _merge_sites([s["sites"] for s in per_worker]),
        "server": registry.snapshot(),
        "workers": [
            {
                "port": port,
                "jobs_observed": s["jobs_observed"],
                "n_classes": s["n_classes"],
            }
            for port, s in zip(ports, per_worker)
        ],
    }


__all__ = [
    "fetch_json",
    "fetch_text",
    "worker_ports",
    "aggregate_partition",
    "aggregate_registry",
    "aggregate_history",
    "aggregate_spans",
    "aggregate_stats",
    "FETCH_TIMEOUT",
]
