"""Wire protocol: newline-delimited JSON requests and responses.

One request per line, one response per line, responses in request order
per connection.  Every request carries the protocol version ``v`` (the
server rejects versions it does not speak, so clients fail loudly rather
than misparse) and an optional caller-chosen ``id`` echoed back in the
response — that is what lets a pipelining client match responses to
in-flight requests.

Requests may additionally carry a request id ``rid`` — an opaque caller
string (≤ 128 chars) echoed back in the response and propagated into the
server's spans and slow-op log lines, so one request can be chased
across client, wire and daemon (see ``docs/OBSERVABILITY.md``).  Unlike
``id`` (per-connection pipelining bookkeeping), ``rid`` is global
tracing identity.

Requests::

    {"v": 1, "op": "ingest", "id": 7, "files": [3, 4], "sizes": [10, 20],
     "site": 0}

Responses::

    {"v": 1, "id": 7, "ok": true, "result": {...}}
    {"v": 1, "id": 7, "ok": false,
     "error": {"code": "bad-request", "message": "..."}}

Error codes are closed-world (:data:`ERROR_CODES`): clients can switch on
them without string matching.  Validation happens here, at the edge —
:mod:`repro.service.state` only ever sees well-typed values.
"""

from __future__ import annotations

import json
import sys
from typing import Any

#: Protocol version spoken by this build.  Bump on incompatible change.
PROTOCOL_VERSION = 1

#: Largest accepted request/response line (bytes), guarding the server
#: against a client streaming an unbounded line into memory.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: The operations of protocol version 1.
OPS = frozenset(
    {
        "ping",
        "ingest",
        "filecule_of",
        "advise",
        "stats",
        "metrics",
        "history",
        "spans",
        "partition",
        "snapshot",
        "shutdown",
    }
)

#: ``op`` strings normalized to one interned instance each, so the
#: server's dispatch table is hit by identity and downstream code never
#: holds per-request copies of the op name.
_INTERNED_OPS = {op: sys.intern(op) for op in OPS}

#: Longest accepted tracing request id (``rid``).
MAX_RID_CHARS = 128

#: Closed set of machine-readable error codes.
ERROR_CODES = frozenset(
    {
        "bad-request",          # malformed JSON / wrong field types
        "unsupported-version",  # request "v" not spoken by this server
        "unknown-op",           # "op" not in OPS
        "too-large",            # line exceeded MAX_LINE_BYTES
        "snapshot-error",       # snapshot/restore I/O or format failure
        "internal",             # unexpected server-side exception
    }
)


class ProtocolError(Exception):
    """A request the server refuses, with a machine-readable code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


class ServiceError(ProtocolError):
    """Client-side mirror of a failed response (``ok: false``)."""


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _encode(obj: dict[str, Any]) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def encode_request(op: str, request_id: int | None = None, **fields) -> bytes:
    """Serialize one request line."""
    obj: dict[str, Any] = {"v": PROTOCOL_VERSION, "op": op}
    if request_id is not None:
        obj["id"] = request_id
    obj.update(fields)
    return _encode(obj)


def ok_response(
    request_id, result: dict[str, Any], rid: str | None = None
) -> dict[str, Any]:
    response = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": result,
    }
    if rid is not None:
        response["rid"] = rid
    return response


def error_response(
    request_id, code: str, message: str, rid: str | None = None
) -> dict[str, Any]:
    if code not in ERROR_CODES:  # defensive: never emit an unknown code
        code = "internal"
    response = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if rid is not None:
        response["rid"] = rid
    return response


def encode_response(response: dict[str, Any]) -> bytes:
    return _encode(response)


#: Pre-rendered wire shape of a successful ingest receipt.  Ingest is
#: the hot op (one per job); ``%``-formatting five integers into this
#: template is ~10x cheaper than building the response dict and running
#: ``json.dumps`` over it.  Only used when the request id is a plain int
#: and no tracing ``rid`` needs echoing — every other shape goes through
#: :func:`encode_response`.
INGEST_OK_TEMPLATE = (
    b'{"v":1,"id":%d,"ok":true,"result":{"job_seq":%d,"n_files":%d,'
    b'"n_classes":%d,"site_hits":%d}}\n'
)

#: Wire shape of any successful response whose result payload is already
#: JSON bytes — used with pre-encoded results (the memoized
#: ``filecule_of`` read path).  Same int-id/no-rid restriction as
#: :data:`INGEST_OK_TEMPLATE`.
RESULT_OK_TEMPLATE = b'{"v":1,"id":%d,"ok":true,"result":%s}\n'


def encode_response_into(buffer: bytearray, response: dict[str, Any]) -> None:
    """Append one encoded response line to a reused ``bytearray``.

    The server's connection writers coalesce consecutive ready responses
    into one buffer and hand the kernel a single ``write`` — under a
    pipelining client this collapses per-response syscall and scheduling
    overhead.
    """
    buffer += json.dumps(response, separators=(",", ":")).encode()
    buffer += b"\n"


# ----------------------------------------------------------------------
# decoding + validation
# ----------------------------------------------------------------------
def _require_int(obj: dict, key: str, *, minimum: int = 0) -> int:
    value = obj.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError("bad-request", f"{key!r} must be an integer")
    if value < minimum:
        raise ProtocolError("bad-request", f"{key!r} must be >= {minimum}")
    return value


_INT_ONLY = frozenset({int})


def _require_int_list(obj: dict, key: str) -> list[int]:
    value = obj.get(key)
    if type(value) is not list:
        raise ProtocolError("bad-request", f"{key!r} must be a list of integers")
    # Hot path: the whole walk runs in C.  ``map(type, ...)`` + a
    # one-element set comparison rejects bools (subclass, different
    # type) and floats without executing per-item bytecode, and the
    # validated list is returned as-is instead of being rebuilt.
    if not value:
        return value
    if set(map(type, value)) == _INT_ONLY and min(value) >= 0:
        return value
    raise ProtocolError(
        "bad-request", f"{key!r} must contain non-negative integers"
    )


def decode_request(line: bytes | str) -> dict[str, Any]:
    """Parse and validate one request line into a normalized dict.

    The returned dict always has ``op`` and ``id`` keys plus the
    validated op-specific fields; unknown extra fields are dropped (they
    are reserved for future protocol versions).
    """
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                "too-large", f"request line exceeds {MAX_LINE_BYTES} bytes"
            )
        line = line.decode("utf-8", errors="replace")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad-request", f"invalid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")

    version = obj.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported-version",
            f"server speaks protocol {PROTOCOL_VERSION}, request used {version!r}",
        )

    op = obj.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError("unknown-op", f"unknown op {op!r}")
    op = _INTERNED_OPS[op]  # canonical instance: dispatch by identity

    request: dict[str, Any] = {"op": op, "id": obj.get("id")}

    rid = obj.get("rid")
    if rid is not None:
        if not isinstance(rid, str) or not rid or len(rid) > MAX_RID_CHARS:
            raise ProtocolError(
                "bad-request",
                f"'rid' must be a non-empty string of <= {MAX_RID_CHARS} chars",
            )
        request["rid"] = rid  # absent when the caller sent none

    if op == "ingest":
        files = _require_int_list(obj, "files")
        request["files"] = files
        if "sizes" in obj and obj["sizes"] is not None:
            sizes = _require_int_list(obj, "sizes")
            if len(sizes) != len(files):
                raise ProtocolError(
                    "bad-request",
                    f"'sizes' length {len(sizes)} != 'files' length {len(files)}",
                )
            request["sizes"] = sizes
        else:
            request["sizes"] = None
        request["site"] = _require_int(obj, "site") if "site" in obj else 0
    elif op == "filecule_of":
        request["file"] = _require_int(obj, "file")
    elif op == "advise":
        request["files"] = _require_int_list(obj, "files")
        request["site"] = _require_int(obj, "site") if "site" in obj else 0
    elif op == "snapshot":
        path = obj.get("path")
        if path is not None and not isinstance(path, str):
            raise ProtocolError("bad-request", "'path' must be a string")
        request["path"] = path
    elif op == "history" or op == "spans":
        # Optional tail cap: at most the last N points per series
        # (history) or the last N spans (spans).
        if obj.get("last") is not None:
            request["last"] = _require_int(obj, "last", minimum=1)
    # ping / stats / metrics / partition / shutdown carry no arguments

    return request
