"""Concurrent load generator for the filecule service.

Replays a job stream — from a :class:`~repro.traces.Trace` (via
:func:`jobs_from_trace`) or any list of job dicts — against a running
daemon over ``connections`` parallel client connections, optionally
paced to a target aggregate request rate, and reports throughput plus
client-observed latency percentiles.

Jobs are interleaved round-robin across connections in stream order, so
with a paced run the daemon sees approximately the original submission
order; because the filecule partition is order-independent over a fixed
job multiset (signature grouping commutes), the final partition equals
the offline one regardless of interleaving — which is exactly what the
equivalence tests and ``BENCH_service.json`` assert.

Open-loop pacing: each job has an absolute scheduled send time
(``start + k / target_rate``).  A slow server makes latencies grow
instead of silently lowering the offered load — the honest way to
measure a service (coordinated-omission-free).

Two throughput levers beyond connection count:

* ``pipeline_depth > 1`` keeps that many jobs in flight per connection
  (batched writes, responses consumed in order).  Latency samples then
  measure batch-send → individual-response, so percentiles under deep
  pipelining reflect queueing inside the batch — by design: that is
  what a pipelining client experiences;
* ``ingest_batch > 1`` is the coalescing-friendly variant of pipelining:
  groups of that many jobs are flushed together with the group's
  ``advise`` probes front-loaded, so the ingests arrive back-to-back in
  the daemon's writer inbox and coalesce into single kernel calls (see
  ``docs/SERVICE.md``).  Advises in a group consult the pre-group
  partition — the trade a batching middleware actually makes;
* :func:`run_load_procs` forks N generator processes so a single Python
  client process is never the bottleneck of a multi-worker measurement;
  per-op latency histograms from the children merge bucket-exactly
  (:meth:`LatencyHistogram.merge`) into one report.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.log import get_logger
from repro.obs.metrics import LatencyHistogram
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.protocol import ServiceError
from repro.traces.trace import Trace

slog = get_logger("repro.service.loadgen")


def jobs_from_trace(trace: Trace) -> list[dict]:
    """Convert a trace into the load generator's job-event list.

    Each event carries the job's input file ids, their byte sizes (so
    the service's size catalog matches the trace), and the submitting
    site (so per-site advisors see the trace's geography).
    """
    sites = trace.job_sites
    events = []
    for job_id, files in trace.iter_jobs():
        file_list = files.tolist()
        events.append(
            {
                "files": file_list,
                "sizes": [int(trace.file_sizes[f]) for f in file_list],
                "site": int(sites[job_id]),
            }
        )
    return events


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    jobs: int
    requests: int
    errors: int
    duration_seconds: float
    latencies_ms: dict[str, dict] = field(default_factory=dict)
    final_stats: dict | None = None
    #: Full-fidelity per-op histograms (:meth:`LatencyHistogram.state_dict`)
    #: — what lets reports from parallel generator processes merge exactly.
    histograms: dict[str, dict] = field(default_factory=dict)
    #: Per-interval trajectory bins (``timeline_interval`` seconds each):
    #: ``{"index", "requests", "errors", "histogram"}`` with a
    #: full-fidelity histogram state per bin, so timelines from parallel
    #: generator processes merge bucket-exactly like the totals.
    timeline: list[dict] = field(default_factory=list)
    timeline_interval: float | None = None

    @property
    def requests_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests / self.duration_seconds

    def timeline_summary(self) -> list[dict]:
        """Render the raw timeline bins into a plotting-friendly list."""
        if not self.timeline or not self.timeline_interval:
            return []
        out = []
        for bin_ in sorted(self.timeline, key=lambda b: b["index"]):
            hist = LatencyHistogram.from_state_dict(bin_["histogram"])
            out.append(
                {
                    "t": bin_["index"] * self.timeline_interval,
                    "requests": bin_["requests"],
                    "errors": bin_["errors"],
                    "requests_per_second": bin_["requests"] / self.timeline_interval,
                    "p50_ms": hist.percentile(0.50) * 1e3,
                    "p99_ms": hist.percentile(0.99) * 1e3,
                }
            )
        return out

    def writer_batching(self) -> dict | None:
        """The daemon's effective writer-batch-size histogram, if polled.

        Extracted from the final ``stats`` snapshot: the actor counts
        every fast-path ingest batch it executes in the labeled counter
        ``ingest_batch_jobs{jobs=...}`` (power-of-two size buckets), so
        this reports what coalescing *actually* achieved server-side —
        which client-side knobs like ``ingest_batch`` only influence.
        Returns ``None`` when final stats were not fetched or the daemon
        predates the counter.
        """
        if not self.final_stats:
            return None
        server = self.final_stats.get("server") or {}
        counters = server.get("counters") or {}
        prefix = 'ingest_batch_jobs{jobs="'
        buckets = {
            key[len(prefix) : -2]: count
            for key, count in counters.items()
            if key.startswith(prefix)
        }
        if not buckets:
            return None

        def lower_edge(label: str) -> int:
            return int(label.rstrip("+").split("-")[0])

        batches = counters.get("ingest_batches", 0)
        latency = server.get("latency") or {}
        ingests = (latency.get("op.ingest") or {}).get("count", 0)
        return {
            "batches": batches,
            "ingest_requests": ingests,
            "mean_jobs_per_batch": (ingests / batches) if batches else None,
            "batch_size_histogram": {
                label: buckets[label]
                for label in sorted(buckets, key=lower_edge)
            },
        }

    def as_dict(self) -> dict:
        payload = {
            "jobs": self.jobs,
            "requests": self.requests,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "requests_per_second": self.requests_per_second,
            "latencies_ms": self.latencies_ms,
        }
        if self.timeline:
            payload["timeline_interval"] = self.timeline_interval
            payload["timeline"] = self.timeline_summary()
        batching = self.writer_batching()
        if batching is not None:
            payload["writer_batching"] = batching
        return payload

    def render(self) -> str:
        lines = [
            f"jobs={self.jobs} requests={self.requests} errors={self.errors}",
            f"duration={self.duration_seconds:.2f}s "
            f"throughput={self.requests_per_second:.0f} req/s",
        ]
        for op, stats in sorted(self.latencies_ms.items()):
            lines.append(
                f"  {op}: p50={stats['p50']:.2f}ms p90={stats['p90']:.2f}ms "
                f"p99={stats['p99']:.2f}ms max={stats['max']:.2f}ms"
            )
        return "\n".join(lines)


def _summarize(samples: list[float]) -> dict:
    arr = np.asarray(samples, dtype=np.float64) * 1e3
    return {
        "count": len(arr),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def _histogram_state(samples: list[float]) -> dict:
    hist = LatencyHistogram()
    for value in samples:
        hist.record(value)
    return hist.state_dict()


def _summarize_histogram(hist: LatencyHistogram) -> dict:
    return {
        "count": hist.count,
        "mean": hist.mean * 1e3,
        "p50": hist.percentile(0.50) * 1e3,
        "p90": hist.percentile(0.90) * 1e3,
        "p99": hist.percentile(0.99) * 1e3,
        "max": hist.max * 1e3,
    }


def merge_reports(reports: list["LoadReport"]) -> "LoadReport":
    """Fold reports from parallel generator processes into one.

    Counts sum; the duration is the slowest process's wall time (they
    start together, so that is the aggregate wall time); latency
    percentiles come from bucket-exact histogram merges rather than
    averaging the children's percentiles.
    """
    if not reports:
        raise ValueError("no reports to merge")
    hists: dict[str, LatencyHistogram] = {}
    for report in reports:
        for op, state in report.histograms.items():
            incoming = LatencyHistogram.from_state_dict(state)
            into = hists.get(op)
            if into is None:
                hists[op] = incoming
            else:
                into.merge(incoming)
    # Timeline bins align by index (children start together), so the
    # trajectory merges the same way the totals do: counts sum, per-bin
    # histograms merge bucket-exactly.
    bins: dict[int, dict] = {}
    timeline_interval = next(
        (r.timeline_interval for r in reports if r.timeline_interval), None
    )
    for report in reports:
        for bin_ in report.timeline:
            into = bins.get(bin_["index"])
            if into is None:
                bins[bin_["index"]] = {
                    "index": bin_["index"],
                    "requests": bin_["requests"],
                    "errors": bin_["errors"],
                    "histogram": bin_["histogram"],
                }
            else:
                into["requests"] += bin_["requests"]
                into["errors"] += bin_["errors"]
                into["histogram"] = (
                    LatencyHistogram.from_state_dict(into["histogram"])
                    .merge(LatencyHistogram.from_state_dict(bin_["histogram"]))
                    .state_dict()
                )
    return LoadReport(
        jobs=sum(r.jobs for r in reports),
        requests=sum(r.requests for r in reports),
        errors=sum(r.errors for r in reports),
        duration_seconds=max(r.duration_seconds for r in reports),
        latencies_ms={
            op: _summarize_histogram(hist) for op, hist in hists.items()
        },
        histograms={op: hist.state_dict() for op, hist in hists.items()},
        timeline=[bins[i] for i in sorted(bins)],
        timeline_interval=timeline_interval,
    )


async def run_load(
    host: str,
    port: int,
    jobs: list[dict],
    *,
    connections: int = 4,
    target_rate: float | None = None,
    offsets: list[float] | None = None,
    advise_every: int = 0,
    pipeline_depth: int = 1,
    ingest_batch: int = 1,
    fetch_final_stats: bool = True,
    rid_prefix: str | None = None,
    progress_every: int = 0,
    timeline_interval: float | None = None,
) -> LoadReport:
    """Replay ``jobs`` against a running server; see module docstring.

    Parameters
    ----------
    connections:
        Parallel client connections (jobs are split round-robin).
    target_rate:
        Aggregate ingest requests per second (None = as fast as possible).
    offsets:
        Absolute per-job send offsets in seconds from run start (one per
        job) — open-loop pacing on an arbitrary schedule instead of a
        constant rate.  This is how trace/scenario time maps linearly
        onto wall clock (a flash crowd at trace fraction 0.6 hits the
        daemon at 60% of the run).  Overrides ``target_rate``.
    advise_every:
        When > 0, every k-th job first asks for an ``advise`` plan —
        modelling a data-management middleware that consults the service
        before scheduling the job's transfers.
    pipeline_depth:
        Jobs kept in flight per connection before reading responses
        (1 = classic request/response).  Keep below the server's
        per-connection backpressure window (128 by default).
    ingest_batch:
        When > 1, flush jobs in groups of this size with the group's
        advises sent *before* its ingests, so the ingests land
        back-to-back in the daemon's writer inbox and coalesce into one
        kernel call per group.  Mutually exclusive with
        ``pipeline_depth > 1`` (it implies pipelined sending at this
        depth).
    fetch_final_stats:
        Issue one final ``stats`` query and attach it to the report.
    rid_prefix:
        When set, every request carries a tracing rid
        ``<prefix>-<job index>`` so client load shows up in the server's
        spans and slow-op log lines with chase-able identities.
    progress_every:
        When > 0, emit a structured ``loadgen-progress`` log record
        every that many completed jobs (aggregate across connections).
    timeline_interval:
        When set, bucket completions into bins of this many seconds and
        attach the per-interval trajectory (throughput, errors, latency
        histogram) to the report — see :meth:`LoadReport.timeline_summary`.
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if pipeline_depth < 1:
        raise ValueError(f"pipeline_depth must be >= 1, got {pipeline_depth}")
    if ingest_batch < 1:
        raise ValueError(f"ingest_batch must be >= 1, got {ingest_batch}")
    if ingest_batch > 1 and pipeline_depth > 1:
        raise ValueError(
            "ingest_batch and pipeline_depth are mutually exclusive "
            "(ingest_batch implies pipelined sending at its own depth)"
        )
    if not jobs:
        raise ValueError("no jobs to replay")
    if offsets is not None and len(offsets) != len(jobs):
        raise ValueError(
            f"offsets length {len(offsets)} != jobs length {len(jobs)}"
        )

    samples: dict[str, list[float]] = {"ingest": [], "advise": []}
    errors = 0
    jobs_done = 0
    timeline_bins: dict[int, dict] = {}
    start = time.perf_counter()

    def note_timeline(latency_s: float | None, ok: bool) -> None:
        if timeline_interval is None:
            return
        index = int((time.perf_counter() - start) / timeline_interval)
        bin_ = timeline_bins.get(index)
        if bin_ is None:
            bin_ = timeline_bins[index] = {
                "index": index,
                "requests": 0,
                "errors": 0,
                "hist": LatencyHistogram(),
            }
        bin_["requests"] += 1
        if not ok:
            bin_["errors"] += 1
        if latency_s is not None:
            bin_["hist"].record(latency_s)

    def scheduled_send(k: int) -> float | None:
        if offsets is not None:
            return start + offsets[k]
        if target_rate is not None:
            return start + k / target_rate
        return None

    def note_progress(batch: int) -> None:
        nonlocal jobs_done
        before = jobs_done
        jobs_done += batch
        if progress_every and jobs_done // progress_every != before // progress_every:
            elapsed = time.perf_counter() - start
            slog.info(
                "loadgen-progress",
                jobs=jobs_done,
                total=len(jobs),
                errors=errors,
                elapsed_s=round(elapsed, 2),
                jobs_per_s=round(jobs_done / elapsed, 1) if elapsed > 0 else 0.0,
            )

    async def worker_serial(client: AsyncServiceClient, worker_id: int) -> int:
        nonlocal errors
        sent = 0
        for k in range(worker_id, len(jobs), connections):
            scheduled = scheduled_send(k)
            if scheduled is not None:
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            job = jobs[k]
            rid = f"{rid_prefix}-{k}" if rid_prefix else None
            if advise_every and k % advise_every == 0:
                t0 = time.perf_counter()
                try:
                    await client.advise(
                        job["files"], site=job.get("site", 0), rid=rid
                    )
                    latency = time.perf_counter() - t0
                    samples["advise"].append(latency)
                    note_timeline(latency, True)
                except ServiceError:
                    errors += 1
                    note_timeline(None, False)
                sent += 1
            t0 = time.perf_counter()
            try:
                await client.ingest(
                    job["files"],
                    sizes=job.get("sizes"),
                    site=job.get("site", 0),
                    rid=rid,
                )
                latency = time.perf_counter() - t0
                samples["ingest"].append(latency)
                note_timeline(latency, True)
            except ServiceError:
                errors += 1
                note_timeline(None, False)
            sent += 1
            note_progress(1)
        return sent

    def _job_fields(k: int) -> dict:
        job = jobs[k]
        fields = {"site": job.get("site", 0)}
        if rid_prefix:
            fields["rid"] = f"{rid_prefix}-{k}"
        return fields

    async def worker_pipelined(
        client: AsyncServiceClient,
        worker_id: int,
        depth: int,
        group_ingests: bool,
    ) -> int:
        nonlocal errors
        sent = 0
        indices = range(worker_id, len(jobs), connections)
        for batch_start in range(0, len(indices), depth):
            batch = indices[batch_start : batch_start + depth]
            scheduled = scheduled_send(batch[0])
            if scheduled is not None:
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            in_flight: list[tuple[str, int]] = []
            if group_ingests:
                # Advises first, then the ingests back-to-back: the
                # actor sees an unbroken ingest run it can coalesce.
                for k in batch:
                    if advise_every and k % advise_every == 0:
                        in_flight.append(
                            (
                                "advise",
                                client.send_nowait(
                                    "advise",
                                    files=jobs[k]["files"],
                                    **_job_fields(k),
                                ),
                            )
                        )
                for k in batch:
                    in_flight.append(
                        (
                            "ingest",
                            client.send_nowait(
                                "ingest",
                                files=jobs[k]["files"],
                                sizes=jobs[k].get("sizes"),
                                **_job_fields(k),
                            ),
                        )
                    )
            else:
                for k in batch:
                    fields = _job_fields(k)
                    if advise_every and k % advise_every == 0:
                        in_flight.append(
                            (
                                "advise",
                                client.send_nowait(
                                    "advise", files=jobs[k]["files"], **fields
                                ),
                            )
                        )
                    in_flight.append(
                        (
                            "ingest",
                            client.send_nowait(
                                "ingest",
                                files=jobs[k]["files"],
                                sizes=jobs[k].get("sizes"),
                                **fields,
                            ),
                        )
                    )
            t0 = time.perf_counter()
            await client.flush()
            for op, request_id in in_flight:
                try:
                    await client.read_response(request_id)
                    latency = time.perf_counter() - t0
                    samples[op].append(latency)
                    note_timeline(latency, True)
                except ServiceError:
                    errors += 1
                    note_timeline(None, False)
                sent += 1
            note_progress(len(batch))
        return sent

    async def worker(worker_id: int) -> int:
        client = await AsyncServiceClient.connect(host, port)
        try:
            if ingest_batch > 1:
                return await worker_pipelined(
                    client, worker_id, ingest_batch, True
                )
            if pipeline_depth > 1:
                return await worker_pipelined(
                    client, worker_id, pipeline_depth, False
                )
            return await worker_serial(client, worker_id)
        finally:
            await client.close()

    sent_counts = await asyncio.gather(
        *(worker(i) for i in range(min(connections, len(jobs))))
    )
    duration = time.perf_counter() - start

    final_stats = None
    if fetch_final_stats:
        async with await AsyncServiceClient.connect(host, port) as client:
            final_stats = await client.stats()

    return LoadReport(
        jobs=len(jobs),
        requests=int(sum(sent_counts)),
        errors=errors,
        duration_seconds=duration,
        latencies_ms={
            op: _summarize(vals) for op, vals in samples.items() if vals
        },
        final_stats=final_stats,
        histograms={
            op: _histogram_state(vals) for op, vals in samples.items() if vals
        },
        timeline=[
            {
                "index": bin_["index"],
                "requests": bin_["requests"],
                "errors": bin_["errors"],
                "histogram": bin_["hist"].state_dict(),
            }
            for index, bin_ in sorted(timeline_bins.items())
        ],
        timeline_interval=timeline_interval,
    )


def run_load_sync(host: str, port: int, jobs: list[dict], **kwargs) -> LoadReport:
    """Blocking wrapper around :func:`run_load` (used by the CLI)."""
    return asyncio.run(run_load(host, port, jobs, **kwargs))


def _replay_slice(host: str, port: int, jobs: list[dict], kwargs: dict) -> dict:
    """Child-process body of :func:`run_load_procs` (top level: picklable)."""
    report = asyncio.run(
        run_load(host, port, jobs, fetch_final_stats=False, **kwargs)
    )
    return {
        "jobs": report.jobs,
        "requests": report.requests,
        "errors": report.errors,
        "duration_seconds": report.duration_seconds,
        "histograms": report.histograms,
        "timeline": report.timeline,
        "timeline_interval": report.timeline_interval,
    }


def run_load_procs(
    host: str,
    port: int,
    jobs: list[dict],
    *,
    procs: int = 2,
    target_rate: float | None = None,
    fetch_final_stats: bool = True,
    **kwargs,
) -> LoadReport:
    """Multi-process open-loop generation: ``procs`` forked generators.

    Each child replays a strided slice of ``jobs`` (slice ``i`` is
    ``jobs[i::procs]``) through its own event loop and connections, so
    one Python process's CPU is never the ceiling on offered load.  The
    target rate is divided evenly across children; per-op latency
    histograms merge bucket-exactly into the returned report.

    Requires the ``fork`` start method (POSIX) — same constraint as
    :mod:`repro.parallel`.
    """
    if procs < 1:
        raise ValueError(f"procs must be >= 1, got {procs}")
    if procs == 1:
        return run_load_sync(
            host,
            port,
            jobs,
            target_rate=target_rate,
            fetch_final_stats=fetch_final_stats,
            **kwargs,
        )
    if not jobs:
        raise ValueError("no jobs to replay")
    procs = min(procs, len(jobs))
    if "fork" not in multiprocessing.get_all_start_methods():
        raise RuntimeError(
            "multi-process load generation needs the 'fork' start method; "
            "use procs=1 on this platform"
        )
    child_kwargs = dict(kwargs)
    child_kwargs["target_rate"] = (
        target_rate / procs if target_rate is not None else None
    )
    offsets = child_kwargs.pop("offsets", None)
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(procs) as pool:
        results = pool.starmap(
            _replay_slice,
            [
                (
                    host,
                    port,
                    jobs[i::procs],
                    # Offsets are absolute send times, so the strided
                    # slice keeps each child on the global schedule.
                    dict(child_kwargs, offsets=offsets[i::procs])
                    if offsets is not None
                    else child_kwargs,
                )
                for i in range(procs)
            ],
        )
    merged = merge_reports(
        [
            LoadReport(
                jobs=r["jobs"],
                requests=r["requests"],
                errors=r["errors"],
                duration_seconds=r["duration_seconds"],
                histograms=r["histograms"],
                timeline=r.get("timeline", []),
                timeline_interval=r.get("timeline_interval"),
            )
            for r in results
        ]
    )
    if fetch_final_stats:
        with ServiceClient(host, port) as client:
            merged.final_stats = client.stats()
    return merged
