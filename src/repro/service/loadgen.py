"""Concurrent load generator for the filecule service.

Replays a job stream — from a :class:`~repro.traces.Trace` (via
:func:`jobs_from_trace`) or any list of job dicts — against a running
daemon over ``connections`` parallel client connections, optionally
paced to a target aggregate request rate, and reports throughput plus
client-observed latency percentiles.

Jobs are interleaved round-robin across connections in stream order, so
with a paced run the daemon sees approximately the original submission
order; because the filecule partition is order-independent over a fixed
job multiset (signature grouping commutes), the final partition equals
the offline one regardless of interleaving — which is exactly what the
equivalence tests and ``BENCH_service.json`` assert.

Open-loop pacing: each job has an absolute scheduled send time
(``start + k / target_rate``).  A slow server makes latencies grow
instead of silently lowering the offered load — the honest way to
measure a service (coordinated-omission-free).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.log import get_logger
from repro.service.client import AsyncServiceClient
from repro.service.protocol import ServiceError
from repro.traces.trace import Trace

slog = get_logger("repro.service.loadgen")


def jobs_from_trace(trace: Trace) -> list[dict]:
    """Convert a trace into the load generator's job-event list.

    Each event carries the job's input file ids, their byte sizes (so
    the service's size catalog matches the trace), and the submitting
    site (so per-site advisors see the trace's geography).
    """
    sites = trace.job_sites
    events = []
    for job_id, files in trace.iter_jobs():
        file_list = [int(f) for f in files]
        events.append(
            {
                "files": file_list,
                "sizes": [int(trace.file_sizes[f]) for f in file_list],
                "site": int(sites[job_id]),
            }
        )
    return events


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    jobs: int
    requests: int
    errors: int
    duration_seconds: float
    latencies_ms: dict[str, dict] = field(default_factory=dict)
    final_stats: dict | None = None

    @property
    def requests_per_second(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.requests / self.duration_seconds

    def as_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "requests": self.requests,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "requests_per_second": self.requests_per_second,
            "latencies_ms": self.latencies_ms,
        }

    def render(self) -> str:
        lines = [
            f"jobs={self.jobs} requests={self.requests} errors={self.errors}",
            f"duration={self.duration_seconds:.2f}s "
            f"throughput={self.requests_per_second:.0f} req/s",
        ]
        for op, stats in sorted(self.latencies_ms.items()):
            lines.append(
                f"  {op}: p50={stats['p50']:.2f}ms p90={stats['p90']:.2f}ms "
                f"p99={stats['p99']:.2f}ms max={stats['max']:.2f}ms"
            )
        return "\n".join(lines)


def _summarize(samples: list[float]) -> dict:
    arr = np.asarray(samples, dtype=np.float64) * 1e3
    return {
        "count": len(arr),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


async def run_load(
    host: str,
    port: int,
    jobs: list[dict],
    *,
    connections: int = 4,
    target_rate: float | None = None,
    advise_every: int = 0,
    fetch_final_stats: bool = True,
    rid_prefix: str | None = None,
    progress_every: int = 0,
) -> LoadReport:
    """Replay ``jobs`` against a running server; see module docstring.

    Parameters
    ----------
    connections:
        Parallel client connections (jobs are split round-robin).
    target_rate:
        Aggregate ingest requests per second (None = as fast as possible).
    advise_every:
        When > 0, every k-th job first asks for an ``advise`` plan —
        modelling a data-management middleware that consults the service
        before scheduling the job's transfers.
    fetch_final_stats:
        Issue one final ``stats`` query and attach it to the report.
    rid_prefix:
        When set, every request carries a tracing rid
        ``<prefix>-<job index>`` so client load shows up in the server's
        spans and slow-op log lines with chase-able identities.
    progress_every:
        When > 0, emit a structured ``loadgen-progress`` log record
        every that many completed jobs (aggregate across connections).
    """
    if connections < 1:
        raise ValueError(f"connections must be >= 1, got {connections}")
    if not jobs:
        raise ValueError("no jobs to replay")

    samples: dict[str, list[float]] = {"ingest": [], "advise": []}
    errors = 0
    jobs_done = 0
    start = time.perf_counter()

    async def worker(worker_id: int) -> int:
        nonlocal errors, jobs_done
        client = await AsyncServiceClient.connect(host, port)
        sent = 0
        try:
            for k in range(worker_id, len(jobs), connections):
                if target_rate is not None:
                    scheduled = start + k / target_rate
                    delay = scheduled - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                job = jobs[k]
                rid = f"{rid_prefix}-{k}" if rid_prefix else None
                if advise_every and k % advise_every == 0:
                    t0 = time.perf_counter()
                    try:
                        await client.advise(
                            job["files"], site=job.get("site", 0), rid=rid
                        )
                        samples["advise"].append(time.perf_counter() - t0)
                    except ServiceError:
                        errors += 1
                    sent += 1
                t0 = time.perf_counter()
                try:
                    await client.ingest(
                        job["files"],
                        sizes=job.get("sizes"),
                        site=job.get("site", 0),
                        rid=rid,
                    )
                    samples["ingest"].append(time.perf_counter() - t0)
                except ServiceError:
                    errors += 1
                sent += 1
                jobs_done += 1
                if progress_every and jobs_done % progress_every == 0:
                    elapsed = time.perf_counter() - start
                    slog.info(
                        "loadgen-progress",
                        jobs=jobs_done,
                        total=len(jobs),
                        errors=errors,
                        elapsed_s=round(elapsed, 2),
                        jobs_per_s=round(jobs_done / elapsed, 1)
                        if elapsed > 0
                        else 0.0,
                    )
        finally:
            await client.close()
        return sent

    sent_counts = await asyncio.gather(
        *(worker(i) for i in range(min(connections, len(jobs))))
    )
    duration = time.perf_counter() - start

    final_stats = None
    if fetch_final_stats:
        async with await AsyncServiceClient.connect(host, port) as client:
            final_stats = await client.stats()

    return LoadReport(
        jobs=len(jobs),
        requests=int(sum(sent_counts)),
        errors=errors,
        duration_seconds=duration,
        latencies_ms={
            op: _summarize(vals) for op, vals in samples.items() if vals
        },
        final_stats=final_stats,
    )


def run_load_sync(host: str, port: int, jobs: list[dict], **kwargs) -> LoadReport:
    """Blocking wrapper around :func:`run_load` (used by the CLI)."""
    return asyncio.run(run_load(host, port, jobs, **kwargs))
