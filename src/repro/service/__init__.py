"""Online filecule data-management service (paper §6, deployed form).

The paper argues that a data-management middleware cannot identify
filecules offline: it must maintain them "adaptively and dynamically" as
job submissions stream in, and use them for cache admission and prefetch
decisions.  This package is that serving layer — the online counterpart
of :mod:`repro.core` — structured like the on-demand storage caches that
succeeded SAM (XCache-style services fed by a live job stream):

* :mod:`repro.service.protocol` — newline-delimited-JSON wire protocol
  (versioned requests, typed errors);
* :mod:`repro.service.state` — single-writer service state: the exact
  incremental filecule partition, per-site cache advisors backed by a
  configurable :mod:`repro.cache` policy, and JSONL snapshot/restore;
* :mod:`repro.service.shard` — site-sharded state: N independent
  single-writer shards whose partitions merge exactly via the §6
  partial-knowledge meet;
* :mod:`repro.service.server` — asyncio daemon with per-connection
  backpressure, per-shard actors, cross-connection request batching,
  coalesced writes and graceful shutdown;
* :mod:`repro.service.cluster` — pre-fork ``SO_REUSEPORT`` multi-worker
  supervisor with crash restarts and coordinated shutdown
  (``repro-serve serve --workers N``);
* :mod:`repro.service.aggregate` — cross-worker read side: merges
  partitions, stats and metric registries over per-worker admin ports;
* :mod:`repro.service.client` — sync and async clients, both pipelined;
* :mod:`repro.service.loadgen` — concurrent load generator replaying a
  :class:`~repro.traces.Trace` or synthetic stream at a target rate —
  optionally pipelined and multi-process — reporting throughput and
  latency percentiles;
Metrics (counters, gauges and the log-bucketed latency histograms behind
the ``stats`` and ``metrics`` queries, the latter in Prometheus text
format) live in :mod:`repro.obs.metrics` — see
``docs/OBSERVABILITY.md``.  The old ``repro.service.metrics`` shim is
gone; this package re-exports the common names for convenience.

Typical use (in one process, e.g. for tests and benchmarks)::

    from repro.service import FileculeServer, ServiceState, run_load_sync

    server = FileculeServer(ServiceState(policy="lru"), host="127.0.0.1")
    ...

Operationally: ``repro-serve serve`` starts the daemon and
``repro-serve loadgen`` drives it; see ``docs/SERVICE.md``.
"""

from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceError,
    decode_request,
    encode_request,
    encode_response,
    error_response,
    ok_response,
)
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.service.state import (
    POLICY_REGISTRY,
    ServiceState,
    SnapshotError,
)
from repro.service.shard import (
    ShardedServiceState,
    merge_partition_payloads,
    restore_state,
    shard_of_site,
)
from repro.service.server import FileculeServer
from repro.service.cluster import (
    ClusterConfig,
    ClusterServer,
    pick_free_port,
    pick_free_port_block,
)
from repro.service.aggregate import (
    aggregate_partition,
    aggregate_registry,
    aggregate_stats,
    worker_ports,
)
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.loadgen import (
    LoadReport,
    jobs_from_trace,
    merge_reports,
    run_load,
    run_load_procs,
    run_load_sync,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceError",
    "decode_request",
    "encode_request",
    "encode_response",
    "error_response",
    "ok_response",
    "PROMETHEUS_CONTENT_TYPE",
    "LatencyHistogram",
    "MetricsRegistry",
    "POLICY_REGISTRY",
    "ServiceState",
    "SnapshotError",
    "ShardedServiceState",
    "merge_partition_payloads",
    "restore_state",
    "shard_of_site",
    "FileculeServer",
    "ClusterConfig",
    "ClusterServer",
    "pick_free_port",
    "pick_free_port_block",
    "aggregate_partition",
    "aggregate_registry",
    "aggregate_stats",
    "worker_ports",
    "AsyncServiceClient",
    "ServiceClient",
    "LoadReport",
    "jobs_from_trace",
    "merge_reports",
    "run_load",
    "run_load_procs",
    "run_load_sync",
]
