"""Site-sharded service state: N independent sub-states, one merged view.

The paper's §6 partial-knowledge result is what makes this safe: a
per-site (here: per-shard) observer of the job stream identifies a
*coarsening* of the true filecule partition, and the meet (common
refinement, :func:`repro.core.merge.merge_partitions`) of all observers'
partitions equals the global partition — because every job lands, whole,
at exactly one observer, and signature grouping factors through that
split.  Sharding the daemon's state by site therefore changes *where*
refinement happens without changing *what* the service knows: per-site
ops (``ingest``, ``advise``) touch exactly one shard, and cross-shard
ops (``stats``, ``partition``, ``filecule_of``, ``snapshot``/``restore``)
fan out and merge.

Two consequences worth noting:

* merged request counts are **exact**, not the upper bound the generic
  merge documents: the shards observe *disjoint* job sets, so the per-
  shard counts of the classes containing a merged group sum to the true
  global count;
* a merged filecule has no single integer class id (its identity is the
  tuple of per-shard class ids), so merged payloads carry a dense index
  or ``class_key`` string instead.

:class:`ShardedServiceState` is interface-compatible with
:class:`~repro.service.state.ServiceState`, so
:class:`~repro.service.server.FileculeServer` hosts either without
special-casing; when the state exposes :meth:`route_request` the server
runs one actor per shard and routes per-site requests to the owning
shard's inbox.  The same merge machinery aggregates *across worker
processes* of a pre-fork cluster (:mod:`repro.service.cluster`): each
worker observes the jobs of the connections the kernel routed to it —
again disjoint — so :func:`merge_partition_payloads` over per-worker
partitions reproduces the offline result bit for bit.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

from repro.core.filecule import Filecule, FileculePartition
from repro.core.merge import merge_all
from repro.obs.log import get_logger
from repro.service.state import (
    SNAPSHOT_FORMAT,
    ServiceState,
    SnapshotError,
    partition_checksum,
)
from repro.util.units import TB

slog = get_logger("repro.service.shard")

SHARDED_SNAPSHOT_FORMAT = "repro-service-sharded-snapshot"
SHARDED_SNAPSHOT_VERSION = 1

#: Golden-ratio multiplier for Fibonacci hashing of site ids.
_HASH_MULT = 0x9E3779B9


def shard_of_site(site: int, n_shards: int) -> int:
    """Map a site id onto a shard index by multiplicative hashing.

    Fibonacci hashing spreads clustered site ids (0, 1, 2, …) uniformly
    across shards, unlike a bare modulo which aliases arithmetic patterns
    in the id space.
    """
    return ((site * _HASH_MULT) & 0xFFFFFFFF) * n_shards >> 32


def _shard_paths(path: Path, n_shards: int) -> list[Path]:
    return [
        path.with_name(f"{path.name}.shard{k}") for k in range(n_shards)
    ]


def merge_partition_payloads(payloads: list[dict]) -> dict:
    """Merge ``partition()`` payloads from disjoint observers.

    ``payloads`` are the wire-shaped results of the ``partition`` op —
    ``{"classes": [{"files": [...], "requests": n}, ...]}`` — one per
    shard or per cluster worker.  Returns a payload of the same shape
    whose grouping is the meet of the inputs; because each job was
    observed by exactly one input, the meet equals the partition a single
    observer of the whole stream would have produced (and the summed
    request counts are exact).
    """
    payloads = [p for p in payloads if p is not None]
    if not payloads:
        return {"n_classes": 0, "checksum": partition_checksum([]), "classes": []}
    n_files = 0
    for payload in payloads:
        for cls in payload["classes"]:
            if cls["files"]:
                n_files = max(n_files, max(cls["files"]) + 1)
    partitions = []
    for payload in payloads:
        filecules = [
            Filecule(
                filecule_id=i,
                file_ids=cls["files"],
                n_requests=int(cls["requests"]),
                size_bytes=0,
            )
            for i, cls in enumerate(payload["classes"])
        ]
        partitions.append(FileculePartition(filecules, n_files))
    merged = merge_all(partitions)
    classes = [
        {"files": fc.file_ids.tolist(), "requests": fc.n_requests}
        for fc in merged
    ]
    classes.sort(key=lambda c: c["files"])
    return {
        "n_classes": len(classes),
        "checksum": partition_checksum(c["files"] for c in classes),
        "classes": classes,
    }


class ShardedServiceState:
    """``n_shards`` independent :class:`ServiceState` sub-states.

    Interface-compatible with :class:`ServiceState` (same ops, same
    payload shapes up to the documented merged-view differences), so the
    server, snapshots and tooling treat both uniformly.

    Parameters mirror :class:`ServiceState`; every shard gets the same
    policy/capacity configuration.
    """

    def __init__(
        self,
        n_shards: int = 2,
        policy: str = "lru",
        capacity_bytes: int = 1 * TB,
        default_size: int = 1,
        decay_half_life: float = math.inf,
        ingest_kernel: bool = True,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.shards = [
            ServiceState(
                policy=policy,
                capacity_bytes=capacity_bytes,
                default_size=default_size,
                decay_half_life=decay_half_life,
                ingest_kernel=ingest_kernel,
            )
            for _ in range(n_shards)
        ]
        self.n_shards = n_shards
        self.policy_name = policy
        self.capacity_bytes = int(capacity_bytes)
        self.default_size = int(default_size)
        self.decay_half_life = float(decay_half_life)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of_site(self, site: int) -> int:
        return shard_of_site(site, self.n_shards)

    def route_request(self, request: dict) -> int:
        """Shard index whose actor must handle ``request``.

        Per-site mutations route to the owning shard; cross-shard ops go
        to shard 0's actor (any actor may run them — all actors share one
        event loop, and the state methods never yield mid-call, so reads
        across shards are atomic with respect to every writer).
        """
        op = request["op"]
        if op == "ingest" or op == "advise":
            return self.shard_of_site(request.get("site", 0))
        return 0

    @property
    def jobs_observed(self) -> int:
        return sum(s.jobs_observed for s in self.shards)

    # ------------------------------------------------------------------
    # per-site ops (single shard)
    # ------------------------------------------------------------------
    def ingest(self, files, sizes=None, site: int = 0) -> dict:
        shard = self.shard_of_site(site)
        receipt = self.shards[shard].ingest(files, sizes, site)
        receipt["shard"] = shard  # receipt counters are shard-local
        return receipt

    def ingest_batch(self, batch) -> list[dict]:
        """Coalesced ingest: delegate runs of same-shard jobs in order.

        The server's per-shard actors only ever queue one shard's
        requests, so a wakeup batch is normally a single run; the
        grouping below keeps direct callers with mixed sites correct
        (each shard still sees its jobs in arrival order).
        """
        receipts: list[dict | None] = [None] * len(batch)
        i = 0
        n = len(batch)
        while i < n:
            shard = self.shard_of_site(batch[i][2])
            j = i + 1
            while j < n and self.shard_of_site(batch[j][2]) == shard:
                j += 1
            for k, receipt in enumerate(
                self.shards[shard].ingest_batch(batch[i:j]), start=i
            ):
                receipt["shard"] = shard
                receipts[k] = receipt
            i = j
        return receipts

    def advise(self, files, site: int = 0) -> dict:
        return self.shards[self.shard_of_site(site)].advise(files, site)

    # ------------------------------------------------------------------
    # cross-shard queries (fan out + merge)
    # ------------------------------------------------------------------
    def _size_of(self, file_id: int) -> int:
        for shard in self.shards:
            size = shard._sizes.get(file_id)
            if size is not None:
                return size
        return self.default_size

    def filecule_of(self, file_id: int) -> dict:
        """The merged filecule of one file: the meet group containing it.

        The intersection of the member sets of the file's class in every
        shard that observed it *is* its global filecule (each shard's
        class is a superset of the true filecule; their meet is exact
        once every co-access has been observed somewhere).
        """
        file_id = int(file_id)
        members: set[int] | frozenset[int] | None = None
        requests = 0
        key_parts = []
        for k, shard in enumerate(self.shards):
            cid = shard._ident.class_of(file_id)
            if cid is None:
                continue
            shard_members = shard._ident.members_of_class(cid)
            members = (
                set(shard_members) if members is None
                else members & shard_members
            )
            requests += shard._ident.requests_of_class(cid)
            key_parts.append(f"{k}.{cid}")
        if members is None:
            return {"file": file_id, "filecule": None}
        files = sorted(members)
        return {
            "file": file_id,
            "filecule": {
                # A merged group spans shards, so it has no single class
                # id; class_key is its stable cross-shard identity.
                "class_id": None,
                "class_key": "+".join(key_parts),
                "files": files,
                "n_files": len(files),
                "requests": requests,
                "bytes": sum(self._size_of(f) for f in files),
            },
        }

    def _merged_partition(self) -> FileculePartition:
        n_files = 0
        for shard in self.shards:
            if shard._ident.n_files_observed:
                n_files = max(n_files, max(shard._ident._class_of) + 1)
        return merge_all(
            [shard._ident.partition(n_files=n_files) for shard in self.shards]
        )

    def partition(self) -> dict:
        merged = self._merged_partition()
        classes = [
            {"files": fc.file_ids.tolist(), "requests": fc.n_requests}
            for fc in merged
        ]
        classes.sort(key=lambda c: c["files"])
        return {
            "n_classes": len(classes),
            "checksum": partition_checksum(c["files"] for c in classes),
            "classes": classes,
            "n_shards": self.n_shards,
        }

    def stats(self) -> dict:
        merged = self._merged_partition()
        top = sorted(merged, key=lambda fc: -fc.n_requests)[:10]
        sites: dict[str, dict] = {}
        for shard in self.shards:
            # Each site routes to exactly one shard, so this is a union.
            sites.update(shard.stats()["sites"])
        files_observed = len({
            f for shard in self.shards for f in shard._ident._class_of
        })
        return {
            "policy": self.policy_name,
            "capacity_bytes": self.capacity_bytes,
            "jobs_observed": self.jobs_observed,
            "files_observed": files_observed,
            "n_classes": len(merged),
            "partition_checksum": partition_checksum(
                fc.file_ids.tolist() for fc in merged
            ),
            "top_filecules": [
                {
                    "class_id": fc.filecule_id,  # dense merged index
                    "files": fc.file_ids.tolist(),
                    "n_files": fc.n_files,
                    "requests": fc.n_requests,
                    "bytes": sum(self._size_of(int(f)) for f in fc.file_ids),
                }
                for fc in top
            ],
            "sites": dict(sorted(sites.items(), key=lambda kv: int(kv[0]))),
            "n_shards": self.n_shards,
            "shards": [
                {
                    "jobs_observed": s._ident.n_jobs_observed,
                    "files_observed": s._ident.n_files_observed,
                    "n_classes": s._ident.n_classes,
                    "n_sites": len(s._advisors),
                }
                for s in self.shards
            ],
        }

    # ------------------------------------------------------------------
    # persistence: one manifest + one plain snapshot per shard
    # ------------------------------------------------------------------
    def snapshot(self, path: str | Path) -> dict:
        """Write a manifest at ``path`` plus ``<path>.shardK`` per shard."""
        path = Path(path)
        receipts = []
        for shard_path, shard in zip(
            _shard_paths(path, self.n_shards), self.shards
        ):
            receipts.append(shard.snapshot(shard_path))
        manifest = {
            "format": SHARDED_SNAPSHOT_FORMAT,
            "version": SHARDED_SNAPSHOT_VERSION,
            "n_shards": self.n_shards,
            "policy": self.policy_name,
            "capacity_bytes": self.capacity_bytes,
            "default_size": self.default_size,
            "shards": [r["path"] for r in receipts],
        }
        if math.isfinite(self.decay_half_life):
            manifest["decay_half_life"] = self.decay_half_life
        tmp = path.with_name(path.name + ".tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(manifest) + "\n")
            os.replace(tmp, path)
        except OSError as exc:
            raise SnapshotError(f"cannot write manifest {path}: {exc}") from exc
        receipt = {
            "path": str(path),
            "n_shards": self.n_shards,
            "n_jobs": sum(r["n_jobs"] for r in receipts),
            "n_classes": sum(r["n_classes"] for r in receipts),
            "n_files": sum(r["n_files"] for r in receipts),
        }
        slog.debug("sharded-snapshot", **receipt)
        return receipt

    @classmethod
    def restore(cls, path: str | Path) -> "ShardedServiceState":
        path = Path(path)
        try:
            manifest = json.loads(path.read_text())
        except OSError as exc:
            raise SnapshotError(f"cannot read manifest {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"{path}: invalid manifest JSON: {exc}") from exc
        if manifest.get("format") != SHARDED_SNAPSHOT_FORMAT:
            raise SnapshotError(f"{path}: not a {SHARDED_SNAPSHOT_FORMAT} file")
        if manifest.get("version") != SHARDED_SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path}: manifest version {manifest.get('version')!r} "
                "not supported"
            )
        state = cls(
            n_shards=int(manifest["n_shards"]),
            policy=manifest["policy"],
            capacity_bytes=manifest["capacity_bytes"],
            default_size=manifest["default_size"],
            decay_half_life=float(
                manifest.get("decay_half_life", math.inf)
            ),
        )
        state.shards = [
            ServiceState.restore(shard_path)
            for shard_path in manifest["shards"]
        ]
        slog.info(
            "sharded-state-restored",
            path=str(path),
            n_shards=state.n_shards,
            n_jobs=state.jobs_observed,
        )
        return state


def restore_state(path: str | Path) -> "ServiceState | ShardedServiceState":
    """Restore whichever snapshot flavor lives at ``path``.

    Sniffs the first line: a sharded manifest restores a
    :class:`ShardedServiceState`, a plain JSONL snapshot a
    :class:`ServiceState`.
    """
    path = Path(path)
    try:
        with open(path) as fh:
            first = fh.readline()
        head = json.loads(first) if first.strip() else {}
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(f"{path}: invalid JSON: {exc}") from exc
    fmt = head.get("format")
    if fmt == SHARDED_SNAPSHOT_FORMAT:
        return ShardedServiceState.restore(path)
    if fmt == SNAPSHOT_FORMAT:
        return ServiceState.restore(path)
    raise SnapshotError(f"{path}: unknown snapshot format {fmt!r}")
