"""Compatibility shim: the metrics implementation moved to
:mod:`repro.obs.metrics` so the simulators and experiment drivers can
share it.  Import from ``repro.obs.metrics`` in new code; this module
keeps the historical ``repro.service.metrics`` import path working.
"""

from repro.obs.metrics import (  # noqa: F401 — re-exported API
    FIRST_BOUND,
    GROWTH,
    N_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    LatencyHistogram,
    MetricsRegistry,
)

__all__ = [
    "FIRST_BOUND",
    "GROWTH",
    "N_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "LatencyHistogram",
    "MetricsRegistry",
]
