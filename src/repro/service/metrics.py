"""Service metrics: counters and log-bucketed latency histograms.

The daemon is the hot path, so recording must be O(1) and allocation-free:
counters are plain ints and latencies land in a fixed geometric bucket
array (20% resolution from 1 µs to ~17 minutes), from which percentiles
are answered by a cumulative walk.  Everything is exposed two ways — the
``stats`` protocol query returns :meth:`MetricsRegistry.snapshot`, and the
server periodically emits :meth:`MetricsRegistry.format_log_line`.
"""

from __future__ import annotations

import math
import time

#: Bucket geometry: bucket ``i`` holds latencies in
#: ``[FIRST_BOUND * GROWTH**(i-1), FIRST_BOUND * GROWTH**i)`` seconds.
FIRST_BOUND = 1e-6
GROWTH = 1.2
N_BUCKETS = 128  # upper bound of last finite bucket ≈ 1e-6 * 1.2**128 ≈ 3.8 h


class LatencyHistogram:
    """Fixed-size geometric histogram of durations in seconds."""

    __slots__ = ("_buckets", "count", "total", "max")

    def __init__(self) -> None:
        self._buckets = [0] * (N_BUCKETS + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        if seconds < FIRST_BOUND:
            index = 0
        else:
            index = min(
                N_BUCKETS,
                1 + int(math.log(seconds / FIRST_BOUND) / math.log(GROWTH)),
            )
        self._buckets[index] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Upper bound (seconds) of the bucket holding the ``q`` quantile.

        ``q`` in [0, 1].  Resolution is one bucket (±20%), which is ample
        for p50/p99 reporting; returns 0.0 when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, n in enumerate(self._buckets):
            seen += n
            if seen >= rank:
                if i >= N_BUCKETS:
                    return self.max
                return FIRST_BOUND * GROWTH**i
        return self.max

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p90_ms": self.percentile(0.90) * 1e3,
            "p99_ms": self.percentile(0.99) * 1e3,
            "max_ms": self.max * 1e3,
        }


class MetricsRegistry:
    """Named counters plus per-operation latency histograms."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._started = clock()
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def inc(self, name: str, delta: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + delta

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> LatencyHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LatencyHistogram()
        return hist

    def observe(self, name: str, seconds: float) -> None:
        self.histogram(name).record(seconds)

    @property
    def uptime_seconds(self) -> float:
        return self._clock() - self._started

    def snapshot(self) -> dict:
        return {
            "uptime_seconds": self.uptime_seconds,
            "counters": dict(sorted(self._counters.items())),
            "latency": {
                name: hist.snapshot()
                for name, hist in sorted(self._histograms.items())
            },
        }

    def format_log_line(self) -> str:
        """One-line operational summary for the periodic server log."""
        parts = [f"up={self.uptime_seconds:.0f}s"]
        parts += [f"{k}={v}" for k, v in sorted(self._counters.items())]
        for name, hist in sorted(self._histograms.items()):
            if hist.count:
                parts.append(
                    f"{name}.p50={hist.percentile(0.5) * 1e3:.2f}ms"
                    f" {name}.p99={hist.percentile(0.99) * 1e3:.2f}ms"
                )
        return "metrics " + " ".join(parts)
