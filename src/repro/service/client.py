"""Sync and async clients for the filecule service protocol.

Both clients speak the protocol of :mod:`repro.service.protocol` over a
single TCP connection, tag every request with a monotonically increasing
``id``, and verify the echoed id — so a desynchronized stream fails fast
instead of silently pairing responses with the wrong requests.  A failed
response (``ok: false``) raises :class:`ServiceError` carrying the
server's machine-readable error code.

:class:`ServiceClient` is the blocking convenience wrapper for scripts
and operational tooling; :class:`AsyncServiceClient` is what the load
generator uses (many instances, one per simulated submission stream).

Both clients support **pipelining**: ``send_nowait`` buffers an encoded
request without waiting for its response, ``flush`` pushes the batch out
in one write, and ``read_response`` consumes answers in request order
(``pipeline`` wraps the three).  Keep each in-flight batch below the
server's per-connection backpressure window (128 by default): the server
stops reading a connection with that many unanswered requests, and a
client that writes unboundedly before reading can deadlock against it
once the socket buffers fill.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any

from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ServiceError,
    encode_request,
)


def _check_response(raw: bytes, expected_id: int) -> dict[str, Any]:
    if not raw:
        raise ConnectionError("server closed the connection")
    response = json.loads(raw)
    version = response.get("v")
    if version != PROTOCOL_VERSION:
        raise ServiceError(
            "unsupported-version",
            f"client speaks protocol {PROTOCOL_VERSION}, server answered {version!r}",
        )
    if response.get("id") != expected_id:
        raise ServiceError(
            "internal",
            f"response id {response.get('id')!r} does not match request "
            f"id {expected_id} — stream desynchronized",
        )
    if not response.get("ok"):
        error = response.get("error") or {}
        raise ServiceError(
            error.get("code", "internal"), error.get("message", "unknown error")
        )
    return response["result"]


class _RequestMixin:
    """The op-specific call surface, shared by both clients.

    ``rid`` (where accepted) is an opaque tracing request id echoed in
    the response and recorded in the server's spans and slow-op log
    lines — see ``docs/OBSERVABILITY.md``.
    """

    def ping(self):
        return self.request("ping")

    def ingest(self, files, sizes=None, site: int = 0, rid: str | None = None):
        return self.request(
            "ingest", files=list(files), sizes=sizes, site=site, rid=rid
        )

    def filecule_of(self, file_id: int):
        return self.request("filecule_of", file=int(file_id))

    def advise(self, files, site: int = 0, rid: str | None = None):
        return self.request("advise", files=list(files), site=site, rid=rid)

    def stats(self):
        return self.request("stats")

    def metrics(self):
        """Prometheus text exposition: ``{"content_type", "body"}``."""
        return self.request("metrics")

    def partition(self):
        return self.request("partition")

    def history(self, last: int | None = None):
        """Flight-recorder time series + health events; ``last`` caps the
        points returned per series."""
        return self.request("history", last=last)

    def spans(self, last: int | None = None):
        """The server's live span ring buffer (newest ``last`` spans)."""
        return self.request("spans", last=last)

    def snapshot(self, path: str | None = None):
        return self.request("snapshot", path=path)

    def shutdown(self):
        return self.request("shutdown")


class ServiceClient(_RequestMixin):
    """Blocking client; usable as a context manager.

    >>> with ServiceClient("127.0.0.1", 7401) as client:   # doctest: +SKIP
    ...     client.ingest([1, 2, 3])
    ...     print(client.stats()["n_classes"])
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._next_id = 0
        self._send_buffer = bytearray()

    def request(self, op: str, **fields) -> dict[str, Any]:
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(encode_request(op, request_id, **fields))
        return _check_response(self._rfile.readline(), request_id)

    # -- pipelining ----------------------------------------------------
    def send_nowait(self, op: str, **fields) -> int:
        """Buffer one request; returns its id for :meth:`read_response`."""
        request_id = self._next_id
        self._next_id += 1
        self._send_buffer += encode_request(op, request_id, **fields)
        return request_id

    def flush(self) -> None:
        """Write every buffered request in one send."""
        if self._send_buffer:
            self._sock.sendall(self._send_buffer)
            del self._send_buffer[:]

    def read_response(self, expected_id: int) -> dict[str, Any]:
        """Read the next response; must be consumed in request order."""
        return _check_response(self._rfile.readline(), expected_id)

    def pipeline(self, requests: list[tuple[str, dict]]) -> list[dict[str, Any]]:
        """Send a batch of ``(op, fields)`` then read all responses.

        Responses come back in request order; a failed response raises
        :class:`ServiceError` after the earlier responses were consumed.
        """
        ids = [self.send_nowait(op, **fields) for op, fields in requests]
        self.flush()
        return [self.read_response(request_id) for request_id in ids]

    def close(self) -> None:
        self._rfile.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServiceClient(_RequestMixin):
    """Asyncio client over one connection (create via :meth:`connect`)."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def request(self, op: str, **fields) -> dict[str, Any]:
        request_id = self._next_id
        self._next_id += 1
        self._writer.write(encode_request(op, request_id, **fields))
        await self._writer.drain()
        return _check_response(await self._reader.readline(), request_id)

    # -- pipelining ----------------------------------------------------
    def send_nowait(self, op: str, **fields) -> int:
        """Queue one request on the transport; returns its id.

        The bytes sit in the transport's write buffer until
        :meth:`flush` (or the event loop) pushes them out — many
        requests coalesce into few writes.
        """
        request_id = self._next_id
        self._next_id += 1
        self._writer.write(encode_request(op, request_id, **fields))
        return request_id

    async def flush(self) -> None:
        """Drain the transport's write buffer (backpressure point)."""
        await self._writer.drain()

    async def read_response(self, expected_id: int) -> dict[str, Any]:
        """Read the next response; must be consumed in request order."""
        return _check_response(await self._reader.readline(), expected_id)

    async def pipeline(
        self, requests: list[tuple[str, dict]]
    ) -> list[dict[str, Any]]:
        """Send a batch of ``(op, fields)`` then read all responses."""
        ids = [self.send_nowait(op, **fields) for op, fields in requests]
        await self.flush()
        return [await self.read_response(request_id) for request_id in ids]

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
