"""Pre-fork multi-worker filecule service (``repro-serve serve --workers N``).

One parent process supervises ``workers`` forked children.  Every child
runs a full :class:`~repro.service.server.FileculeServer` — its own event
loop, its own (optionally site-sharded) state, its own metrics registry —
and all children accept on the **same TCP port**:

* on platforms with ``SO_REUSEPORT`` (Linux, modern BSDs) each worker
  binds its own acceptor and the kernel load-balances incoming
  connections across them — no accept lock, no parent in the data path;
* elsewhere the parent binds one listening socket before forking and the
  children inherit it (classic pre-fork accept sharing).

Because every connection is owned by exactly one worker, the workers
observe **disjoint job sets** — which is precisely the condition under
which per-observer filecule partitions merge exactly (paper §6, see
:mod:`repro.service.shard`).  Cross-worker aggregation therefore happens
out-of-band, over per-worker admin HTTP ports (``metrics_port + index``):
:mod:`repro.service.aggregate` fans out over them and merges partitions,
stats and metric registries.

Supervision policy:

* a worker that **crashes** (signal or non-zero exit) is restarted, and
  the replacement restores the worker's last snapshot if one exists —
  crash recovery loses only the jobs ingested since that snapshot;
* a worker that exits **cleanly** (exit code 0 — e.g. it handled a
  ``shutdown`` op) initiates a coordinated shutdown of the whole
  cluster;
* ``SIGINT``/``SIGTERM`` to the parent forwards ``SIGTERM`` to every
  worker and waits for their graceful stops (each drains in-flight
  requests and writes a final snapshot if configured);
* more than ``max_restarts`` crash-restarts shuts the cluster down
  rather than flapping forever.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal
import socket
import time
from dataclasses import dataclass

from repro.obs.log import get_logger
from repro.service.server import HAS_REUSEPORT, FileculeServer
from repro.service.shard import ShardedServiceState, restore_state
from repro.service.state import ServiceState
from repro.util.units import TB

slog = get_logger("repro.service.cluster")

#: Seconds the parent waits for one worker to report readiness.
READY_TIMEOUT = 30.0

#: Seconds the parent waits for a worker's graceful stop before SIGKILL.
STOP_TIMEOUT = 10.0


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a worker needs to build its server (fork-inherited)."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    shards: int = 1  # site-shards per worker (1 = plain ServiceState)
    policy: str = "lru"
    capacity_bytes: int = 1 * TB
    default_size: int = 1
    decay_half_life: float = math.inf  # co-access half-life in ingest ticks
    snapshot_path: str | None = None  # base; worker k writes <base>.w<k>
    snapshot_interval: float | None = None
    log_interval: float | None = None
    metrics_port: int | None = None  # base; worker k serves on base + k
    span_log_path: str | None = None  # base; worker k writes <base>.w<k>
    sample_interval: float | None = None  # flight-recorder cadence (seconds)
    series_capacity: int = 512  # ring capacity per flight-recorder series
    health: bool = False  # run the detector panel on each sample
    health_log_path: str | None = None  # base; worker k writes <base>.w<k>
    slow_op_seconds: float = 0.25
    restore: bool = False
    max_restarts: int = 5

    def worker_snapshot_path(self, index: int) -> str | None:
        if self.snapshot_path is None:
            return None
        return f"{self.snapshot_path}.w{index}"

    def worker_metrics_port(self, index: int) -> int | None:
        if self.metrics_port is None:
            return None
        return self.metrics_port + index


def pick_free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port that was free a moment ago.

    Inherently racy (the kernel may hand it out again before we bind),
    but good enough for benchmarks and tests on loopback.
    """
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def pick_free_port_block(host: str, count: int, attempts: int = 20) -> int:
    """A base port such that ``base … base+count-1`` were all bindable."""
    for _ in range(attempts):
        base = pick_free_port(host)
        if base + count >= 65536:
            continue
        try:
            probes = []
            try:
                for offset in range(count):
                    probe = socket.socket()
                    probes.append(probe)
                    probe.bind((host, base + offset))
            finally:
                for probe in probes:
                    probe.close()
        except OSError:
            continue
        return base
    raise RuntimeError(f"no free block of {count} ports found on {host}")


def _build_state(config: ClusterConfig, index: int, restore: bool):
    snap = config.worker_snapshot_path(index)
    if restore and snap is not None and os.path.exists(snap):
        return restore_state(snap)
    if config.shards > 1:
        return ShardedServiceState(
            n_shards=config.shards,
            policy=config.policy,
            capacity_bytes=config.capacity_bytes,
            default_size=config.default_size,
            decay_half_life=config.decay_half_life,
        )
    return ServiceState(
        policy=config.policy,
        capacity_bytes=config.capacity_bytes,
        default_size=config.default_size,
        decay_half_life=config.decay_half_life,
    )


def _worker_main(
    config: ClusterConfig,
    index: int,
    port: int,
    ready_queue,
    sock: socket.socket | None,
    restore: bool,
) -> None:
    """Child-process entry: build state + server, serve until stopped."""
    state = _build_state(config, index, restore)
    span_log = (
        f"{config.span_log_path}.w{index}" if config.span_log_path else None
    )
    health_log = (
        f"{config.health_log_path}.w{index}" if config.health_log_path else None
    )
    server = FileculeServer(
        state,
        host=config.host,
        port=port,
        snapshot_path=config.worker_snapshot_path(index),
        snapshot_interval=config.snapshot_interval,
        log_interval=config.log_interval,
        metrics_port=config.worker_metrics_port(index),
        span_log_path=span_log,
        sample_interval=config.sample_interval,
        series_capacity=config.series_capacity,
        health=config.health,
        health_log_path=health_log,
        slow_op_seconds=config.slow_op_seconds,
        reuse_port=sock is None,
        sock=sock,
        worker_index=index,
    )

    def report_ready(srv: FileculeServer) -> None:
        ready_queue.put(
            {
                "worker": index,
                "pid": os.getpid(),
                "port": srv.port,
                "metrics_port": srv.metrics_port,
            }
        )

    import asyncio

    asyncio.run(server.serve_forever(ready_callback=report_ready))


@dataclass
class WorkerHandle:
    """Parent-side view of one worker process."""

    index: int
    process: multiprocessing.process.BaseProcess
    pid: int
    port: int
    metrics_port: int | None


class ClusterServer:
    """Parent supervisor for a pre-fork worker fleet (see module doc)."""

    def __init__(self, config: ClusterConfig) -> None:
        if config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {config.workers}")
        self.config = config
        self.port: int | None = None
        self.workers: dict[int, WorkerHandle] = {}
        self.restarts = 0
        self._ctx = multiprocessing.get_context("fork")
        self._ready_queue = None
        self._listen_sock: socket.socket | None = None
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Fork and wait for every worker to report its bound ports."""
        if self.workers:
            raise RuntimeError("cluster already started")
        config = self.config
        self.port = config.port or pick_free_port(config.host)
        if not HAS_REUSEPORT:
            # Fallback: bind once in the parent, children inherit the
            # socket across fork and share its accept queue.
            self._listen_sock = socket.socket()
            self._listen_sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            self._listen_sock.bind((config.host, self.port))
            self._listen_sock.listen(256)
        self._ready_queue = self._ctx.Queue()
        for index in range(config.workers):
            self._spawn(index, restore=config.restore)
        self._await_ready(expected=config.workers)
        slog.info(
            "cluster-started",
            host=config.host,
            port=self.port,
            workers=config.workers,
            shards=config.shards,
            reuse_port=HAS_REUSEPORT,
            metrics_ports=self.metrics_ports(),
        )

    def _spawn(self, index: int, *, restore: bool) -> None:
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self.config,
                index,
                self.port,
                self._ready_queue,
                self._listen_sock,
                restore,
            ),
            name=f"repro-serve-w{index}",
        )
        process.start()
        self.workers[index] = WorkerHandle(
            index=index,
            process=process,
            pid=process.pid,
            port=self.port,
            metrics_port=self.config.worker_metrics_port(index),
        )

    def _await_ready(self, expected: int) -> None:
        import queue as queue_module

        deadline = time.monotonic() + READY_TIMEOUT
        seen = 0
        while seen < expected:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                self.stop()
                raise RuntimeError(
                    f"only {seen}/{expected} workers became ready "
                    f"within {READY_TIMEOUT}s"
                )
            try:
                info = self._ready_queue.get(timeout=min(timeout, 0.5))
            except queue_module.Empty:
                # A worker that died before reporting will never report.
                for handle in self.workers.values():
                    if handle.process.exitcode is not None:
                        self.stop()
                        raise RuntimeError(
                            f"worker {handle.index} exited with code "
                            f"{handle.process.exitcode} before becoming ready"
                        )
                continue
            handle = self.workers[info["worker"]]
            handle.port = info["port"]
            handle.metrics_port = info["metrics_port"]
            seen += 1

    def pids(self) -> dict[int, int]:
        """Live worker index → pid."""
        return {
            index: handle.process.pid
            for index, handle in self.workers.items()
            if handle.process.exitcode is None
        }

    def metrics_ports(self) -> list[int]:
        """Admin ports of all workers (empty when metrics are disabled)."""
        return [
            handle.metrics_port
            for handle in self.workers.values()
            if handle.metrics_port is not None
        ]

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def supervise_once(self) -> bool:
        """One supervision step; returns False when the cluster must stop.

        Crashed workers (killed or non-zero exit) are restarted with
        snapshot restore; a cleanly-exited worker means a directed
        shutdown, which the parent turns into a coordinated stop of the
        whole fleet.
        """
        if self._stopping:
            return False
        for index, handle in list(self.workers.items()):
            exitcode = handle.process.exitcode
            if exitcode is None:
                continue
            if exitcode == 0:
                slog.info("worker-shutdown", worker=index)
                return False
            self.restarts += 1
            if self.restarts > self.config.max_restarts:
                slog.error(
                    "restart-budget-exhausted",
                    worker=index,
                    restarts=self.restarts,
                )
                return False
            slog.warning(
                "worker-crashed",
                worker=index,
                exitcode=exitcode,
                restarts=self.restarts,
            )
            # Restore from the worker's last snapshot: recovery loses
            # only the jobs ingested since that snapshot was written.
            self._spawn(index, restore=True)
            self._await_ready(expected=1)
            slog.info(
                "worker-restarted", worker=index, pid=self.workers[index].pid
            )
        return True

    def run(self) -> None:
        """Blocking entry point: start, supervise, stop on signal."""
        stop_requested = False

        def request_stop(signum, frame):
            nonlocal stop_requested
            stop_requested = True

        previous = {
            sig: signal.signal(sig, request_stop)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            self.start()
            while not stop_requested and self.supervise_once():
                time.sleep(0.2)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.stop()

    def stop(self) -> None:
        """Coordinated graceful shutdown of every worker."""
        self._stopping = True
        for handle in self.workers.values():
            if handle.process.exitcode is None:
                with _suppress_process_errors():
                    os.kill(handle.process.pid, signal.SIGTERM)
        deadline = time.monotonic() + STOP_TIMEOUT
        for handle in self.workers.values():
            handle.process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if handle.process.exitcode is None:
                slog.error("worker-stop-timeout", worker=handle.index)
                handle.process.kill()
                handle.process.join(timeout=1.0)
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None
        slog.info(
            "cluster-stopped",
            workers=len(self.workers),
            restarts=self.restarts,
        )

    # ------------------------------------------------------------------
    # context manager convenience (tests, benchmarks)
    # ------------------------------------------------------------------
    def __enter__(self) -> "ClusterServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class _suppress_process_errors:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return exc_type is not None and issubclass(
            exc_type, (ProcessLookupError, PermissionError)
        )


def run_cluster(config: ClusterConfig) -> int:
    """CLI helper: run a cluster (or fall through to a single server).

    ``workers == 1`` still goes through the cluster path when asked to,
    but ``repro-serve`` uses an in-process server for that case.
    """
    ClusterServer(config).run()
    return 0


__all__ = [
    "ClusterConfig",
    "ClusterServer",
    "WorkerHandle",
    "pick_free_port",
    "pick_free_port_block",
    "run_cluster",
    "READY_TIMEOUT",
    "STOP_TIMEOUT",
]
