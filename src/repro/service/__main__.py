"""Operational CLI: ``repro-serve`` / ``python -m repro.service``.

Five subcommands::

    repro-serve serve --port 7401 --workers 4 --shards 2 \
        --advisor-policy lru \
        --capacity 10TB --snapshot /var/lib/repro/state.jsonl \
        --snapshot-interval 60 --metrics-port 9401 --span-log spans.jsonl \
        --sample-every 1.0 --health --health-log health.jsonl
    repro-serve loadgen --port 7401 --scale tiny --seed 42 --jobs 2000 \
        --connections 8 --pipeline 32 --procs 2 --rate 500 --json load.json \
        --timeline-json timeline.json
    repro-serve stats --port 7401
    repro-serve metrics --port 7401
    repro-serve metrics --metrics-port 9401 --worker 2
    repro-serve metrics --metrics-port 9401 --aggregate --workers 4
    repro-serve spans --port 7401 --last 100
    repro-serve spans --metrics-port 9401 --workers 4

``serve`` runs the daemon in the foreground (SIGINT/SIGTERM shut it down
gracefully, writing a final snapshot when configured); ``--workers N``
forks a pre-fork ``SO_REUSEPORT`` cluster (:mod:`repro.service.cluster`)
where worker ``k`` snapshots to ``<snapshot>.w<k>`` and serves admin HTTP
on ``metrics-port + k``.  ``loadgen`` replays a calibrated synthetic
workload against a running daemon — pipelined and/or from several forked
generator processes — and prints a throughput/latency report; ``stats``
pretty-prints one ``stats`` query; ``metrics`` prints one Prometheus text
exposition payload — from the data port, from one worker's admin port
(``--worker``), or merged across every worker (``--aggregate``).  The
live dashboard is the separate ``repro-top`` script
(:mod:`repro.obs.top`).  ``spans`` pulls the live span ring buffer —
from the data port, or from every worker of a cluster — and prints it
as JSONL (spans otherwise die with the process unless ``--span-log``
was set at startup).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import registry
from repro.obs import log as obslog

from repro.service.aggregate import (
    aggregate_registry,
    aggregate_spans,
    fetch_text,
    worker_ports,
)
from repro.service.client import ServiceClient
from repro.service.cluster import ClusterConfig, run_cluster
from repro.service.loadgen import jobs_from_trace, run_load_procs, run_load_sync
from repro.service.server import FileculeServer
from repro.service.shard import ShardedServiceState, restore_state
from repro.service.state import ServiceState
from repro.util.units import parse_size
from repro.workload.calibration import (
    default_config,
    paper_config,
    small_config,
    tiny_config,
)
from repro.workload.generator import generate_trace

_SCALES = {
    "tiny": tiny_config,
    "small": small_config,
    "default": default_config,
    "paper": paper_config,
}


def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7401)


def _cmd_serve(args: argparse.Namespace) -> int:
    obslog.configure(min_level=args.log_level)
    if args.restore and not args.snapshot:
        print("--restore requires --snapshot", file=sys.stderr)
        return 2
    sample_every = args.sample_every
    if args.health and sample_every is None:
        sample_every = 1.0
    if args.workers > 1:
        return run_cluster(
            ClusterConfig(
                host=args.host,
                port=args.port,
                workers=args.workers,
                shards=args.shards,
                policy=args.policy,
                capacity_bytes=args.capacity,
                default_size=args.default_size,
                decay_half_life=args.decay_half_life,
                snapshot_path=args.snapshot,
                snapshot_interval=args.snapshot_interval,
                log_interval=args.log_interval,
                metrics_port=args.metrics_port,
                span_log_path=args.span_log,
                slow_op_seconds=args.slow_op_ms / 1e3,
                restore=args.restore,
                sample_interval=sample_every,
                health=args.health,
                health_log_path=args.health_log,
            )
        )

    def fresh_state():
        if args.shards > 1:
            return ShardedServiceState(
                n_shards=args.shards,
                policy=args.policy,
                capacity_bytes=args.capacity,
                default_size=args.default_size,
                decay_half_life=args.decay_half_life,
            )
        return ServiceState(
            policy=args.policy,
            capacity_bytes=args.capacity,
            default_size=args.default_size,
            decay_half_life=args.decay_half_life,
        )

    if args.restore:
        if Path(args.snapshot).exists():
            state = restore_state(args.snapshot)
            print(
                f"restored {state.stats()['jobs_observed']} jobs / "
                f"{state.stats()['n_classes']} classes from {args.snapshot}"
            )
        else:
            print(f"no snapshot at {args.snapshot}; starting fresh")
            state = fresh_state()
    else:
        state = fresh_state()
    server = FileculeServer(
        state,
        host=args.host,
        port=args.port,
        snapshot_path=args.snapshot,
        snapshot_interval=args.snapshot_interval,
        log_interval=args.log_interval,
        metrics_port=args.metrics_port,
        span_log_path=args.span_log,
        slow_op_seconds=args.slow_op_ms / 1e3,
        sample_interval=sample_every,
        health=args.health,
        health_log_path=args.health_log,
    )
    server.run()
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    trace = generate_trace(_SCALES[args.scale](), seed=args.seed)
    if args.scenario:
        from repro.scenario import scenario_job_stream

        jobs = list(scenario_job_stream(trace, args.scenario, seed=args.seed))
    else:
        jobs = jobs_from_trace(trace)
    if args.jobs is not None:
        jobs = jobs[: args.jobs]
    print(
        f"replaying {len(jobs)} jobs from '{args.scale}' (seed {args.seed})"
        + (f" under scenario '{args.scenario}'" if args.scenario else "")
        + (f" across {args.procs} processes" if args.procs > 1 else "")
    )
    timeline_interval = args.timeline_interval
    if args.timeline_json and timeline_interval is None:
        timeline_interval = 1.0
    report = run_load_procs(
        args.host,
        args.port,
        jobs,
        procs=args.procs,
        connections=args.connections,
        target_rate=args.rate,
        advise_every=args.advise_every,
        pipeline_depth=args.pipeline,
        ingest_batch=args.ingest_batch,
        rid_prefix=args.rid_prefix,
        progress_every=args.progress_every,
        timeline_interval=timeline_interval,
    )
    print(report.render())
    if report.final_stats is not None:
        print(
            f"server partition: {report.final_stats['n_classes']} classes "
            f"over {report.final_stats['files_observed']} files "
            f"(checksum {report.final_stats['partition_checksum']})"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(report.as_dict(), indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.timeline_json:
        payload = {
            "interval": report.timeline_interval,
            "timeline": report.timeline_summary(),
            # What the daemon's writer actually coalesced this run
            # (size-bucketed batch counts from the server registry).
            "writer_batching": report.writer_batching(),
        }
        Path(args.timeline_json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.timeline_json}")
    return 1 if report.errors else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with ServiceClient(args.host, args.port) as client:
        print(json.dumps(client.stats(), indent=2))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.worker is not None or args.aggregate:
        if args.metrics_port is None:
            print(
                "--worker/--aggregate need --metrics-port (the cluster's "
                "admin port base)",
                file=sys.stderr,
            )
            return 2
        if args.worker is not None:
            # One specific worker's exposition, via its admin port.  The
            # data port cannot address a worker: under SO_REUSEPORT the
            # kernel hands the connection to an arbitrary one.
            print(
                fetch_text(args.host, args.metrics_port + args.worker, "/metrics"),
                end="",
            )
            return 0
        ports = worker_ports(args.metrics_port, args.workers)
        print(aggregate_registry(args.host, ports).expose(), end="")
        return 0
    with ServiceClient(args.host, args.port) as client:
        print(client.metrics()["body"], end="")
    return 0


def _cmd_spans(args: argparse.Namespace) -> int:
    if args.metrics_port is not None:
        ports = worker_ports(args.metrics_port, args.workers)
        payload = aggregate_spans(args.host, ports)
    else:
        with ServiceClient(args.host, args.port) as client:
            payload = client.spans(last=args.last)
    lines = [json.dumps(span, sort_keys=True) for span in payload.get("spans", [])]
    if args.metrics_port is not None and args.last is not None:
        lines = lines[-args.last :]
    body = "\n".join(lines) + ("\n" if lines else "")
    if args.out:
        Path(args.out).write_text(body)
        print(
            f"wrote {len(lines)} spans to {args.out} "
            f"(dropped {payload.get('dropped', 0)})",
            file=sys.stderr,
        )
    else:
        print(body, end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Online filecule data-management service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run the daemon in the foreground")
    _add_endpoint_args(p_serve)
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="pre-fork N worker processes sharing the port (SO_REUSEPORT)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="site-shard each worker's state into K single-writer actors",
    )
    p_serve.add_argument(
        "--advisor-policy",
        "--policy",
        dest="policy",
        default="lru",
        metavar="SPEC",
        help=(
            "registry policy spec backing the per-site cache advisors "
            f"(e.g. {', '.join(registry.service_policy_names(include_aliases=False))})"
        ),
    )
    p_serve.add_argument(
        "--capacity",
        type=parse_size,
        default=parse_size("1TB"),
        help="modelled per-site cache capacity (e.g. 500GB, 10TB)",
    )
    p_serve.add_argument(
        "--default-size",
        type=parse_size,
        default=1,
        help="assumed size for files ingested without one",
    )
    p_serve.add_argument(
        "--decay-half-life",
        type=float,
        default=float("inf"),
        metavar="TICKS",
        help=(
            "co-access evidence half-life in ingest ticks; finite values "
            "let stale filecules dissolve into singletons (default: inf, "
            "the classic append-only refinement)"
        ),
    )
    p_serve.add_argument("--snapshot", default=None, help="snapshot JSONL path")
    p_serve.add_argument(
        "--snapshot-interval", type=float, default=None, metavar="SECONDS"
    )
    p_serve.add_argument(
        "--log-interval", type=float, default=30.0, metavar="SECONDS"
    )
    p_serve.add_argument(
        "--restore",
        action="store_true",
        help="restore state from --snapshot if it exists",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve Prometheus exposition over HTTP at GET /metrics",
    )
    p_serve.add_argument(
        "--span-log",
        default=None,
        metavar="PATH",
        help="export the span ring buffer as JSONL on shutdown",
    )
    p_serve.add_argument(
        "--slow-op-ms",
        type=float,
        default=250.0,
        metavar="MS",
        help="log a structured slow-op record for ops handled slower than this",
    )
    p_serve.add_argument(
        "--sample-every",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "enable the flight recorder: sample the metrics registry into "
            "ring-buffer time series on this cadence"
        ),
    )
    p_serve.add_argument(
        "--health",
        action="store_true",
        help=(
            "run online health detectors over the flight recorder "
            "(implies --sample-every 1.0 unless set)"
        ),
    )
    p_serve.add_argument(
        "--health-log",
        default=None,
        metavar="PATH",
        help="export health events as JSONL on shutdown (needs --health)",
    )
    p_serve.add_argument(
        "--log-level",
        default="info",
        choices=sorted(obslog.LEVELS),
        help="structured-log threshold",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_load = sub.add_parser(
        "loadgen", help="replay a synthetic workload against a daemon"
    )
    _add_endpoint_args(p_load)
    p_load.add_argument("--scale", default="tiny", choices=sorted(_SCALES))
    p_load.add_argument("--seed", type=int, default=42)
    p_load.add_argument(
        "--scenario",
        default=None,
        metavar="SPEC",
        help=(
            "mutate the replayed stream through a scenario composition "
            "(e.g. 'popularity-drift?strength=0.8+flash-crowd'); see "
            "docs/SCENARIOS.md"
        ),
    )
    p_load.add_argument(
        "--jobs", type=int, default=None, help="truncate the stream"
    )
    p_load.add_argument("--connections", type=int, default=4)
    p_load.add_argument(
        "--pipeline",
        type=int,
        default=1,
        metavar="DEPTH",
        help="jobs kept in flight per connection (1 = request/response)",
    )
    p_load.add_argument(
        "--ingest-batch",
        type=int,
        default=1,
        metavar="JOBS",
        help=(
            "flush ingests in coalescing-friendly groups of this size "
            "(advises front-loaded per group; excludes --pipeline)"
        ),
    )
    p_load.add_argument(
        "--procs",
        type=int,
        default=1,
        metavar="N",
        help="fork N generator processes and merge their reports",
    )
    p_load.add_argument(
        "--rate", type=float, default=None, help="target ingest requests/s"
    )
    p_load.add_argument(
        "--advise-every",
        type=int,
        default=0,
        help="ask for an advise plan before every k-th job",
    )
    p_load.add_argument("--json", default=None, help="write the report as JSON")
    p_load.add_argument(
        "--rid-prefix",
        default=None,
        metavar="PREFIX",
        help="tag every request with a tracing rid '<PREFIX>-<job index>'",
    )
    p_load.add_argument(
        "--progress-every",
        type=int,
        default=0,
        metavar="JOBS",
        help="emit a structured progress record every N completed jobs",
    )
    p_load.add_argument(
        "--timeline-json",
        default=None,
        metavar="PATH",
        help="write a per-interval throughput/latency timeline as JSON",
    )
    p_load.add_argument(
        "--timeline-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="timeline bin width (default 1.0 when --timeline-json is set)",
    )
    p_load.set_defaults(func=_cmd_loadgen)

    p_stats = sub.add_parser("stats", help="query and print live stats")
    _add_endpoint_args(p_stats)
    p_stats.set_defaults(func=_cmd_stats)

    p_metrics = sub.add_parser(
        "metrics", help="print one Prometheus exposition payload"
    )
    _add_endpoint_args(p_metrics)
    p_metrics.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="BASE",
        help="cluster admin port base (worker k listens on BASE + k)",
    )
    p_metrics.add_argument(
        "--worker",
        type=int,
        default=None,
        metavar="IDX",
        help="scrape worker IDX's admin port instead of the data port",
    )
    p_metrics.add_argument(
        "--aggregate",
        action="store_true",
        help="merge the expositions of all --workers workers",
    )
    p_metrics.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker count for --aggregate",
    )
    p_metrics.set_defaults(func=_cmd_metrics)

    p_spans = sub.add_parser(
        "spans", help="dump the live span ring buffer as JSONL"
    )
    _add_endpoint_args(p_spans)
    p_spans.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="BASE",
        help=(
            "pull and merge every worker's /spans over the cluster admin "
            "ports instead of the data port"
        ),
    )
    p_spans.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker count for --metrics-port",
    )
    p_spans.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="only the newest N spans",
    )
    p_spans.add_argument(
        "--out", default=None, metavar="PATH", help="write JSONL here instead of stdout"
    )
    p_spans.set_defaults(func=_cmd_spans)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
