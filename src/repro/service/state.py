"""Service state: live filecule partition, cache advisors, persistence.

One :class:`ServiceState` instance is the single source of truth behind a
running daemon.  It is deliberately synchronous and not thread-safe: the
server funnels every mutation through a single-writer actor task
(:mod:`repro.service.server`), which is what makes the incremental
partition refinement race-free without locks.

Three concerns live here:

* **partition** — an :class:`~repro.core.incremental.IncrementalFileculeIdentifier`
  maintains the *exact* filecule partition of the ingested job stream
  (equal, by construction and by test, to offline
  :func:`~repro.core.identify.find_filecules` over the same jobs);
* **advice** — one cache advisor per site models that site's cache with a
  configurable :mod:`repro.cache` policy; ``advise`` turns a job's input
  set into a filecule-granularity admission/prefetch plan against that
  model (paper §4: load whole filecules, bypass ones larger than the
  cache);
* **persistence** — ``snapshot``/``restore`` write the hard state
  (partition + file sizes + counters) as JSONL so a restarted daemon
  resumes without replaying history.  Advisor cache contents are *soft*
  state: they are rebuilt from traffic after a restart, exactly like a
  real cache warming up.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from pathlib import Path
from typing import Callable

import numpy as np

from repro import registry
from repro.cache.base import CacheMetrics, ReplacementPolicy
from repro.cache.online import batched_policy_for
from repro.core.incremental import IncrementalFileculeIdentifier
from repro.obs.log import get_logger
from repro.util.units import TB

slog = get_logger("repro.service.state")

#: Backwards-compatible name → factory view of the advisor-eligible
#: policies.  The authoritative catalog is :mod:`repro.registry`; this
#: dict exists because earlier releases exposed it from this module.
#: Prefer ``registry.service_policy_names()`` / ``registry.build``.
POLICY_REGISTRY: dict[str, Callable[[int], ReplacementPolicy]] = {
    name: (lambda capacity, _name=name: registry.build(_name, capacity))
    for name in registry.service_policy_names()
}


def _parse_advisor_policy(policy: str) -> "registry.BoundSpec":
    """Validate an advisor policy spec: known, and buildable online.

    Raises ``ValueError`` (the registry's ``unknown policy`` error, or a
    capability complaint listing the eligible names) on anything the
    online service cannot instantiate from configuration alone.
    """
    bound = registry.parse(policy)
    spec = registry.get_spec(bound.name)
    if spec.needs_filecules or spec.needs_trace:
        raise ValueError(
            f"policy {bound.name!r} needs offline resources "
            f"({', '.join(spec.flags)}) and cannot back an online advisor; "
            f"choose from {registry.service_policy_names()}"
        )
    return bound

SNAPSHOT_FORMAT = "repro-service-snapshot"
SNAPSHOT_VERSION = 1

#: Shared empty segment for zero-file ingests in a coalesced batch.
_EMPTY_IDS = np.empty(0, dtype=np.int64)


class SnapshotError(Exception):
    """A snapshot file could not be written, read, or understood."""


def partition_checksum(groups) -> str:
    """Deterministic fingerprint of a partition's grouping.

    ``groups`` is any iterable of iterables of file ids.  The checksum
    only depends on *which files are grouped together*, so the streamed
    service partition and an offline :func:`find_filecules` run can be
    compared across the wire with 16 hex characters.
    """
    canonical = sorted(sorted(int(f) for f in g) for g in groups)
    payload = json.dumps(canonical, separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


class _SiteAdvisor:
    """Cache model for one site: a policy instance plus its metrics."""

    __slots__ = ("policy", "metrics")

    def __init__(self, name: str, policy: ReplacementPolicy) -> None:
        self.policy = policy
        self.metrics = CacheMetrics(
            name=name, capacity_bytes=policy.capacity_bytes
        )


class ServiceState:
    """The daemon's mutable state (single-writer; see module docstring).

    Parameters
    ----------
    policy:
        :mod:`repro.registry` spec string for the cache policy backing
        the per-site advisors — a canonical name, a legacy short alias
        (``"lru"``, ``"gds"``, ...) or a parameterized spec such as
        ``"greedy-dual-size"``.  Policies needing offline resources (a
        trace or a filecule partition) are rejected; see
        :func:`repro.registry.service_policy_names`.
    capacity_bytes:
        Modelled cache capacity of every site.
    default_size:
        Size assumed for files ingested without an explicit size (sizes
        refine retroactively: a later ingest carrying the real size
        updates the catalog).
    decay_half_life:
        Co-access evidence half-life in ingest ticks (one tick per job).
        Finite values make the partition forget: filecules whose decayed
        request weight falls below the identifier's staleness threshold
        dissolve into singletons, so a flash crowd's co-access pattern
        stops binding files long after the crowd is gone.  The default
        (``inf``) preserves the exact append-only refinement semantics.
    ingest_kernel:
        When True (default) and the advisor policy has an array-backed
        twin (plain ``file-lru``/``file-fifo``), site advisors are built
        as :class:`~repro.cache.online.BatchedFileCache` so coalesced
        :meth:`ingest_batch` windows take the vectorized path.  Disable
        to force the registry-built policies and the per-access advisor
        walk — the "per-job path" benchmarks compare against.
    """

    def __init__(
        self,
        policy: str = "lru",
        capacity_bytes: int = 1 * TB,
        default_size: int = 1,
        decay_half_life: float = math.inf,
        ingest_kernel: bool = True,
    ) -> None:
        self._policy_spec = _parse_advisor_policy(policy)
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if default_size <= 0:
            raise ValueError(f"default_size must be positive, got {default_size}")
        self.policy_name = policy
        self.capacity_bytes = int(capacity_bytes)
        self.default_size = int(default_size)
        self.decay_half_life = float(decay_half_life)
        self.ingest_kernel = bool(ingest_kernel)
        self._batched_policy = (
            batched_policy_for(self._policy_spec) if self.ingest_kernel else None
        )
        self._ident = IncrementalFileculeIdentifier(
            half_life=self.decay_half_life
        )
        self._sizes: dict[int, int] = {}
        self._advisors: dict[int, _SiteAdvisor] = {}
        self._clock = 0.0  # logical request time fed to the policies
        # Reused per-call scratch set for advise's order-preserving
        # de-duplication — cleared, never reallocated.
        self._seen: set[int] = set()
        # Memoized JSON payload of each class's _class_info, keyed by
        # class id — the read fast path behind ``filecule_of_json``.
        # Classes only ever split, so invalidation is exact: ingest
        # drops the entries observe_job reports as affected.
        self._filecule_json: dict[int, bytes] = {}

    @property
    def jobs_observed(self) -> int:
        """Stream position — cheap accessor for the ``ping`` hot path."""
        return self._ident.n_jobs_observed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _advisor(self, site: int) -> _SiteAdvisor:
        advisor = self._advisors.get(site)
        if advisor is None:
            factory = self._batched_policy
            advisor = _SiteAdvisor(
                f"{self.policy_name}@site{site}",
                factory(self.capacity_bytes)
                if factory is not None
                else registry.build(self._policy_spec, self.capacity_bytes),
            )
            self._advisors[site] = advisor
        return advisor

    def _size_of(self, file_id: int) -> int:
        return self._sizes.get(file_id, self.default_size)

    def _class_info(self, class_id: int) -> dict:
        members = sorted(self._ident.members_of_class(class_id))
        return {
            "class_id": class_id,
            "files": members,
            "n_files": len(members),
            "requests": self._ident.requests_of_class(class_id),
            "bytes": sum(self._size_of(f) for f in members),
        }

    # ------------------------------------------------------------------
    # mutations (must run on the single writer)
    # ------------------------------------------------------------------
    def ingest(
        self,
        files: list[int],
        sizes: list[int] | None = None,
        site: int = 0,
    ) -> dict:
        """Observe one job submission: refine the partition, warm the model.

        Returns a small receipt (stream position and partition shape) so
        pipelining clients can cheaply spot-check progress.
        """
        if sizes is not None:
            # int() keeps direct API callers' numpy sizes JSON-safe for
            # snapshots; map+zip runs the walk at C speed.
            self._sizes.update(zip(files, map(int, sizes)))
        # The ingest clock ticks once per job (incremented below); feeding
        # the *post*-tick value keeps decay time aligned with the clock
        # the advisors see.  At half_life=inf the value is irrelevant.
        affected = self._ident.observe_job(files, now=self._clock + 1.0)
        if self._filecule_json:
            # Exact read-cache invalidation: only the classes this job
            # created, split, or advanced change their lookup payload.
            cache_pop = self._filecule_json.pop
            for cid in affected:
                cache_pop(cid, None)
        advisor = self._advisor(site)
        self._clock += 1.0
        clock = self._clock
        # De-duplicated, order-preserving walk: dict.fromkeys builds the
        # unique-file sequence in one C pass (cheaper than per-file set
        # membership bytecode).  Outcome accounting accumulates in locals
        # and folds into the advisor's metrics with one record_totals
        # call per job instead of one method call per file.
        size_of = self._sizes.get
        default_size = self.default_size
        policy_request = advisor.policy.request
        hits = 0
        bytes_requested = 0
        bytes_hit = 0
        bytes_fetched = 0
        bypasses = 0
        unique = dict.fromkeys(files)
        requests = len(unique)
        for f in unique:
            size = size_of(f, default_size)
            outcome = policy_request(f, size, clock)
            bytes_requested += size
            if outcome.hit:
                hits += 1
                bytes_hit += size
            else:
                fetched = outcome.bytes_fetched
                if fetched:
                    bytes_fetched += fetched
                if outcome.bypassed:
                    bypasses += 1
        advisor.metrics.record_totals(
            requests, hits, bytes_requested, bytes_hit, bytes_fetched, bypasses
        )
        return {
            "job_seq": self._ident.n_jobs_observed,
            "n_files": self._ident.n_files_observed,
            "n_classes": self._ident.n_classes,
            "site_hits": hits,
        }

    def ingest_batch(
        self, batch: list[tuple[list[int], list[int] | None, int]]
    ) -> list[dict]:
        """Observe a window of queued jobs in one kernel pass.

        ``batch`` is a list of ``(files, sizes, site)`` triples in
        arrival order.  Returns one :meth:`ingest` receipt per job, with
        the same values a per-job loop would produce — the partition,
        size catalog, advisor caches, metrics, and read-cache
        invalidation all end in the identical state.  The server's actor
        calls this with each wakeup's run of queued ingest requests; the
        partition refinement goes through
        :meth:`~repro.core.incremental.IncrementalFileculeIdentifier.observe_jobs_batch`
        and advisor accounting through the array kernel's windowed path
        when the policy has one.
        """
        n = len(batch)
        if n == 0:
            return []
        # Build phase, in job order: update the size catalog and resolve
        # each job's deduped file ids + request sizes exactly as the
        # sequential path's dict.fromkeys walk + size_of reads would at
        # that job's turn (a later job's size refinement must not leak
        # into an earlier job's accounting).
        size_get = self._sizes.get
        sizes_update = self._sizes.update
        default_size = self.default_size
        segs: list[np.ndarray] = []
        seg_sizes: list[np.ndarray] = []
        for files, sizes, site in batch:
            if sizes is not None:
                sizes_update(zip(files, map(int, sizes)))
            if not len(files):
                segs.append(_EMPTY_IDS)
                seg_sizes.append(_EMPTY_IDS)
                continue
            arr = np.asarray(files, dtype=np.int64)
            if bool((arr[1:] > arr[:-1]).all()):
                # Sorted-unique input (the wire-common case): the job's
                # own sizes are what the catalog now holds for it.
                segs.append(arr)
                if sizes is not None and len(sizes) == len(files):
                    seg_sizes.append(np.asarray(sizes, dtype=np.int64))
                else:
                    seg_sizes.append(
                        np.fromiter(
                            (size_get(f, default_size) for f in files),
                            dtype=np.int64,
                            count=len(files),
                        )
                    )
            else:
                unique = dict.fromkeys(files)
                segs.append(
                    np.fromiter(unique, dtype=np.int64, count=len(unique))
                )
                seg_sizes.append(
                    np.fromiter(
                        (size_get(f, default_size) for f in unique),
                        dtype=np.int64,
                        count=len(unique),
                    )
                )
        offs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum([s.size for s in segs], out=offs[1:])
        flat = np.concatenate(segs)
        clock0 = self._clock
        nows = clock0 + np.arange(1, n + 1, dtype=np.float64)
        job_seq0 = self._ident.n_jobs_observed
        counts: list[tuple[int, int]] = []
        affected = self._ident.observe_jobs_batch(
            flat, offs, now=nows, job_counts=counts
        )
        self._clock = clock0 + n
        if self._filecule_json:
            cache_pop = self._filecule_json.pop
            for cid in affected:
                cache_pop(cid, None)
        # Advisor accounting: group jobs by site (arrival order is
        # preserved within each group; sites have independent caches, so
        # cross-site order is immaterial).
        hits_per_job = [0] * n
        by_site: dict[int, list[int]] = {}
        for i, (_, _, site) in enumerate(batch):
            by_site.setdefault(site, []).append(i)
        for site, idxs in by_site.items():
            advisor = self._advisor(site)
            window = getattr(advisor.policy, "request_window", None)
            if window is not None:
                if len(idxs) == n:
                    site_flat, site_offs = flat, offs
                    site_sizes = np.concatenate(seg_sizes)
                else:
                    site_segs = [segs[i] for i in idxs]
                    site_flat = np.concatenate(site_segs)
                    site_offs = np.zeros(len(idxs) + 1, dtype=np.int64)
                    np.cumsum(
                        [s.size for s in site_segs], out=site_offs[1:]
                    )
                    site_sizes = np.concatenate([seg_sizes[i] for i in idxs])
                job_hits, totals = window(site_flat, site_offs, site_sizes)
                advisor.metrics.record_totals(*totals)
                for i, h in zip(idxs, job_hits):
                    hits_per_job[i] = h
            else:
                # Policies without a windowed kernel keep the exact
                # per-access walk, one job at a time on its own clock.
                policy_request = advisor.policy.request
                record = advisor.metrics.record_totals
                for i in idxs:
                    clock = clock0 + i + 1.0
                    hits = 0
                    bytes_requested = 0
                    bytes_hit = 0
                    bytes_fetched = 0
                    bypasses = 0
                    seg_list = segs[i].tolist()
                    for f, size in zip(seg_list, seg_sizes[i].tolist()):
                        outcome = policy_request(f, size, clock)
                        bytes_requested += size
                        if outcome.hit:
                            hits += 1
                            bytes_hit += size
                        else:
                            fetched = outcome.bytes_fetched
                            if fetched:
                                bytes_fetched += fetched
                            if outcome.bypassed:
                                bypasses += 1
                    record(
                        len(seg_list),
                        hits,
                        bytes_requested,
                        bytes_hit,
                        bytes_fetched,
                        bypasses,
                    )
                    hits_per_job[i] = hits
        return [
            {
                "job_seq": job_seq0 + i + 1,
                "n_files": counts[i][0],
                "n_classes": counts[i][1],
                "site_hits": hits_per_job[i],
            }
            for i in range(n)
        ]

    # ------------------------------------------------------------------
    # queries (read-only)
    # ------------------------------------------------------------------
    def filecule_of(self, file_id: int) -> dict:
        class_id = self._ident.class_of(file_id)
        if class_id is None:
            return {"file": file_id, "filecule": None}
        return {"file": file_id, "filecule": self._class_info(class_id)}

    def filecule_of_json(self, file_id: int) -> bytes:
        """Encoded ``filecule_of`` result — the memoized read fast path.

        ``_class_info`` re-sorts members and re-sums sizes on every call,
        which dominates lookup latency for large filecules.  The encoded
        payload is a pure function of the class's membership, request
        count and member sizes — all of which only change when ingest
        touches the class — so it is rendered once per class version and
        served from :attr:`_filecule_json` until invalidated.  Returns
        the JSON bytes of exactly what :meth:`filecule_of` would return.
        """
        class_id = self._ident.class_of(file_id)
        if class_id is None:
            return b'{"file":%d,"filecule":null}' % file_id
        cached = self._filecule_json.get(class_id)
        if cached is None:
            cached = json.dumps(
                self._class_info(class_id), separators=(",", ":")
            ).encode()
            self._filecule_json[class_id] = cached
        return b'{"file":%d,"filecule":%s}' % (file_id, cached)

    def advise(self, files: list[int], site: int = 0) -> dict:
        """Filecule-granularity prefetch/admission plan for one job.

        For each filecule touched by the job's input set the plan says
        whether the site's modelled cache already holds the requested
        members (``hit``), should fetch the whole filecule (``fetch`` —
        listing the non-requested members to prefetch), or should stream
        the requested files uncached because the filecule exceeds
        capacity (``bypass``).  Never-before-seen files form a
        provisional group of their own (they share the signature "this
        job only" until a later job splits them).
        """
        seen = self._seen
        seen.clear()
        advisor = self._advisors.get(site)
        class_of = self._ident.class_of
        by_class: dict[int | None, list[int]] = {}
        for f in files:
            if f in seen:
                continue
            seen.add(f)
            by_class.setdefault(class_of(f), []).append(f)

        entries = []
        fetch_bytes = 0
        prefetch_files = 0
        for class_id, members_requested in sorted(
            by_class.items(), key=lambda kv: (kv[0] is None, kv[0] or 0)
        ):
            if class_id is None:
                size = sum(self._size_of(f) for f in members_requested)
                entry = {
                    "class_id": None,
                    "files": sorted(members_requested),
                    "prefetch": [],
                    "bytes": size,
                    "action": "fetch" if size <= self.capacity_bytes else "bypass",
                }
            else:
                # Resolve members once; avoid the _class_info round trip
                # (it re-sorts and re-sums on every call).
                members = self._ident.members_of_class(class_id)
                class_bytes = sum(self._size_of(f) for f in members)
                cached = advisor is not None and all(
                    f in advisor.policy for f in members_requested
                )
                if cached:
                    action = "hit"
                elif class_bytes > self.capacity_bytes:
                    action = "bypass"
                else:
                    action = "fetch"
                entry = {
                    "class_id": class_id,
                    "files": sorted(members_requested),
                    "prefetch": sorted(members.difference(members_requested)),
                    "bytes": class_bytes,
                    "action": action,
                }
            if entry["action"] == "fetch":
                fetch_bytes += entry["bytes"]
                prefetch_files += len(entry["prefetch"])
            elif entry["action"] == "bypass":
                fetch_bytes += sum(self._size_of(f) for f in entry["files"])
            entries.append(entry)

        return {
            "site": site,
            "plan": entries,
            "fetch_bytes": fetch_bytes,
            "prefetch_files": prefetch_files,
        }

    def stats(self) -> dict:
        """Live popularity/partition metrics (the ``stats`` query body)."""
        top = sorted(
            (
                (self._ident.requests_of_class(cid), cid)
                for cid in self._ident.class_ids()
            ),
            reverse=True,
        )[:10]
        return {
            "policy": self.policy_name,
            "capacity_bytes": self.capacity_bytes,
            "jobs_observed": self._ident.n_jobs_observed,
            "files_observed": self._ident.n_files_observed,
            "n_classes": self._ident.n_classes,
            "partition_checksum": partition_checksum(self._ident.classes()),
            "top_filecules": [self._class_info(cid) for _, cid in top],
            "sites": {
                str(site): {
                    "policy": adv.metrics.name,
                    "requests": adv.metrics.requests,
                    "hits": adv.metrics.hits,
                    "hit_rate": adv.metrics.hit_rate,
                    "byte_miss_rate": adv.metrics.byte_miss_rate,
                    "used_bytes": adv.policy.used_bytes,
                }
                for site, adv in sorted(self._advisors.items())
            },
        }

    def partition(self) -> dict:
        """The full current partition (for equivalence checks and export)."""
        classes = [
            {
                "files": sorted(self._ident.members_of_class(cid)),
                "requests": self._ident.requests_of_class(cid),
            }
            for cid in self._ident.class_ids()
        ]
        classes.sort(key=lambda c: c["files"])
        return {
            "n_classes": len(classes),
            "checksum": partition_checksum(c["files"] for c in classes),
            "classes": classes,
        }

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def snapshot(self, path: str | Path) -> dict:
        """Atomically write the hard state as JSONL; returns a receipt."""
        path = Path(path)
        ident_state = self._ident.state_dict()
        meta: dict = {
            "type": "meta",
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "policy": self.policy_name,
            "capacity_bytes": self.capacity_bytes,
            "default_size": self.default_size,
            "clock": self._clock,
            "n_jobs": ident_state["n_jobs"],
            "next_class": ident_state["next_class"],
        }
        if "half_life" in ident_state:
            # Decay configuration travels with the snapshot (JSON cannot
            # carry inf, so the keys only appear for finite half-lives;
            # their absence means the classic append-only identifier).
            meta["decay_half_life"] = ident_state["half_life"]
            meta["decay_threshold"] = ident_state["stale_threshold"]
            meta["decay_time"] = ident_state["time"]
        tmp = path.with_name(path.name + ".tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as fh:
                fh.write(json.dumps(meta) + "\n")
                for entry in ident_state["classes"]:
                    fh.write(json.dumps({"type": "class", **entry}) + "\n")
                for f, s in sorted(self._sizes.items()):
                    fh.write(
                        json.dumps({"type": "file", "id": f, "size": s}) + "\n"
                    )
            os.replace(tmp, path)
        except OSError as exc:
            raise SnapshotError(f"cannot write snapshot {path}: {exc}") from exc
        receipt = {
            "path": str(path),
            "n_jobs": ident_state["n_jobs"],
            "n_classes": len(ident_state["classes"]),
            "n_files": len(self._sizes),
        }
        slog.debug("state-snapshot", **receipt)
        return receipt

    @classmethod
    def restore(cls, path: str | Path) -> "ServiceState":
        """Rebuild a state from :meth:`snapshot` output.

        The partition and file-size catalog come back exactly; advisor
        caches restart cold (soft state, rewarmed by traffic).
        """
        path = Path(path)
        try:
            with open(path) as fh:
                lines = fh.readlines()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc

        meta = None
        classes: list[dict] = []
        sizes: dict[int, int] = {}
        for lineno, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SnapshotError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            kind = record.get("type")
            if kind == "meta":
                meta = record
            elif kind == "class":
                classes.append(record)
            elif kind == "file":
                sizes[int(record["id"])] = int(record["size"])
            else:
                raise SnapshotError(
                    f"{path}:{lineno}: unknown record type {kind!r}"
                )
        if meta is None:
            raise SnapshotError(f"{path}: missing meta record")
        if meta.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(f"{path}: not a {SNAPSHOT_FORMAT} file")
        if meta.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path}: snapshot version {meta.get('version')!r} not supported"
            )

        state = cls(
            policy=meta["policy"],
            capacity_bytes=meta["capacity_bytes"],
            default_size=meta["default_size"],
            decay_half_life=float(meta.get("decay_half_life", math.inf)),
        )
        ident_state = {
            "n_jobs": meta["n_jobs"],
            "next_class": meta["next_class"],
            "classes": classes,
        }
        if "decay_half_life" in meta:
            ident_state["half_life"] = float(meta["decay_half_life"])
            ident_state["stale_threshold"] = float(
                meta.get("decay_threshold", 0.5)
            )
            ident_state["time"] = float(meta.get("decay_time", 0.0))
        try:
            state._ident = IncrementalFileculeIdentifier.from_state_dict(
                ident_state
            )
        except (KeyError, ValueError) as exc:
            raise SnapshotError(f"{path}: corrupt partition state: {exc}") from exc
        state._sizes = sizes
        state._clock = float(meta.get("clock", 0.0))
        slog.info(
            "state-restored",
            path=str(path),
            n_jobs=meta["n_jobs"],
            n_classes=len(classes),
            n_files=len(sizes),
        )
        return state
