"""The asyncio daemon serving the filecule-management protocol.

Concurrency model — one event loop, one writer:

* every connection gets a **reader task** (decodes request lines and a
  **response queue**) and a **writer task** (sends responses back in
  request order).  The response queue is bounded: when a client pipelines
  faster than it drains responses, ``put`` blocks the reader, which stops
  reading the socket, which pushes back through TCP — per-connection
  backpressure with no explicit window bookkeeping;
* all requests from all connections funnel into a single **state actor**
  task that owns :class:`~repro.service.state.ServiceState`.  The actor
  drains its inbox in batches (up to ``batch_max`` per wakeup), so under
  load the per-request scheduling overhead amortizes across the batch
  while state mutations stay strictly serialized;
* ``SIGINT``/``SIGTERM`` (and the ``shutdown`` op) trigger a graceful
  stop: stop accepting, unblock connected readers, let the actor drain
  every in-flight request, write a final snapshot if configured.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import signal
import time

from repro.service.metrics import MetricsRegistry
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    encode_response,
    error_response,
    ok_response,
)
from repro.service.state import ServiceState, SnapshotError

log = logging.getLogger("repro.service")

_STOP = object()  # sentinel closing a connection's response queue


class FileculeServer:
    """Serve a :class:`ServiceState` over newline-delimited JSON TCP.

    Parameters
    ----------
    state:
        The service state (restored from a snapshot by the caller if
        desired).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (exposed as
        :attr:`port` after :meth:`start`).
    batch_max:
        Maximum requests the state actor handles per wakeup.
    pending_per_connection:
        Bound on a connection's unsent responses before its reader stops
        accepting new requests (per-connection backpressure window).
    snapshot_path, snapshot_interval:
        When both are set, the hard state is snapshotted every
        ``snapshot_interval`` seconds and once more on shutdown.
    log_interval:
        Seconds between periodic metrics log lines (None disables).
    """

    def __init__(
        self,
        state: ServiceState,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_max: int = 64,
        pending_per_connection: int = 128,
        snapshot_path: str | None = None,
        snapshot_interval: float | None = None,
        log_interval: float | None = None,
    ) -> None:
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if pending_per_connection < 1:
            raise ValueError(
                f"pending_per_connection must be >= 1, got {pending_per_connection}"
            )
        self.state = state
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.pending_per_connection = pending_per_connection
        self.snapshot_path = snapshot_path
        self.snapshot_interval = snapshot_interval
        self.log_interval = log_interval
        self.metrics = MetricsRegistry()
        self._server: asyncio.AbstractServer | None = None
        self._inbox: asyncio.Queue | None = None
        self._stop_event: asyncio.Event | None = None
        self._actor_task: asyncio.Task | None = None
        self._background: list[asyncio.Task] = []
        self._connections: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # request handling (runs on the actor — the single writer)
    # ------------------------------------------------------------------
    def _handle(self, request: dict) -> dict:
        op = request["op"]
        request_id = request["id"]
        try:
            if op == "ping":
                result = {
                    "pong": True,
                    "jobs_observed": self.state.stats()["jobs_observed"],
                }
            elif op == "ingest":
                result = self.state.ingest(
                    request["files"], request["sizes"], request["site"]
                )
            elif op == "filecule_of":
                result = self.state.filecule_of(request["file"])
            elif op == "advise":
                result = self.state.advise(request["files"], request["site"])
            elif op == "stats":
                result = self.state.stats()
                result["server"] = self.metrics.snapshot()
            elif op == "partition":
                result = self.state.partition()
            elif op == "snapshot":
                path = request["path"] or self.snapshot_path
                if path is None:
                    raise ProtocolError(
                        "bad-request",
                        "no 'path' given and the server has no snapshot path",
                    )
                result = self.state.snapshot(path)
            elif op == "shutdown":
                result = {"stopping": True}
                assert self._stop_event is not None
                asyncio.get_running_loop().call_soon(self._stop_event.set)
            else:  # unreachable: decode_request validates op
                raise ProtocolError("unknown-op", f"unknown op {op!r}")
        except ProtocolError as exc:
            self.metrics.inc("errors")
            return error_response(request_id, exc.code, exc.message)
        except SnapshotError as exc:
            self.metrics.inc("errors")
            return error_response(request_id, "snapshot-error", str(exc))
        except Exception as exc:  # noqa: BLE001 — fault barrier
            log.exception("internal error handling %s", op)
            self.metrics.inc("errors")
            return error_response(request_id, "internal", f"{type(exc).__name__}: {exc}")
        return ok_response(request_id, result)

    async def _actor(self) -> None:
        assert self._inbox is not None
        while True:
            batch = [await self._inbox.get()]
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._inbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.metrics.inc("batches")  # mean batch size = requests/batches
            for request, future, t_enqueued in batch:
                t0 = time.perf_counter()
                response = self._handle(request)
                t1 = time.perf_counter()
                self.metrics.inc("requests")
                self.metrics.observe(f"op.{request['op']}", t1 - t0)
                self.metrics.observe("queue_wait", t0 - t_enqueued)
                if not future.done():
                    future.set_result(response)
            # Yield so connection writers interleave with the next batch.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    async def _write_responses(
        self, outbox: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            item = await outbox.get()
            if item is _STOP:
                return
            response = await item
            writer.write(encode_response(response))
            await writer.drain()  # client-side backpressure

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.inc("connections")
        loop = asyncio.get_running_loop()
        outbox: asyncio.Queue = asyncio.Queue(maxsize=self.pending_per_connection)
        writer_task = asyncio.create_task(self._write_responses(outbox, writer))
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # line exceeded the stream limit (MAX_LINE_BYTES)
                    future = loop.create_future()
                    future.set_result(
                        error_response(
                            None,
                            "too-large",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        )
                    )
                    await outbox.put(future)
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                future = loop.create_future()
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    self.metrics.inc("errors")
                    future.set_result(error_response(None, exc.code, exc.message))
                    await outbox.put(future)
                    continue
                # Hand to the actor first so the future always resolves,
                # then to the outbox.  The outbox is the backpressure
                # point: blocks when the client has
                # pending_per_connection unanswered requests.
                assert self._inbox is not None
                await self._inbox.put((request, future, time.perf_counter()))
                await outbox.put(future)
        except ConnectionError:
            pass
        finally:
            try:
                outbox.put_nowait(_STOP)
            except asyncio.QueueFull:
                writer_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, ConnectionError):
                await writer_task
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    def _track_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.create_task(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    # ------------------------------------------------------------------
    # background maintenance
    # ------------------------------------------------------------------
    async def _periodic_snapshot(self) -> None:
        assert self.snapshot_path is not None and self.snapshot_interval
        while True:
            await asyncio.sleep(self.snapshot_interval)
            try:
                receipt = self.state.snapshot(self.snapshot_path)
                self.metrics.inc("snapshots")
                log.info("snapshot written: %s", receipt)
            except SnapshotError as exc:
                self.metrics.inc("snapshot_failures")
                log.error("periodic snapshot failed: %s", exc)

    async def _periodic_log(self) -> None:
        assert self.log_interval
        while True:
            await asyncio.sleep(self.log_interval)
            log.info("%s", self.metrics.format_log_line())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving; returns once the socket is listening."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._inbox = asyncio.Queue()
        self._stop_event = asyncio.Event()
        self._actor_task = asyncio.create_task(self._actor())
        if self.snapshot_path and self.snapshot_interval:
            self._background.append(asyncio.create_task(self._periodic_snapshot()))
        if self.log_interval:
            self._background.append(asyncio.create_task(self._periodic_log()))
        self._server = await asyncio.start_server(
            self._track_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            "serving on %s:%d (policy=%s, capacity=%d bytes)",
            self.host,
            self.port,
            self.state.policy_name,
            self.state.capacity_bytes,
        )

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, snapshot, release."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        # Unblock connected readers so their tasks can finish cleanly.
        for task in list(self._connections):
            task.cancel()
        await asyncio.gather(*self._connections, return_exceptions=True)
        # Let the actor answer everything already accepted.
        assert self._inbox is not None and self._actor_task is not None
        while not self._inbox.empty():
            await asyncio.sleep(0)
        self._actor_task.cancel()
        for task in self._background:
            task.cancel()
        await asyncio.gather(
            self._actor_task, *self._background, return_exceptions=True
        )
        if self.snapshot_path:
            try:
                receipt = self.state.snapshot(self.snapshot_path)
                log.info("final snapshot written: %s", receipt)
            except SnapshotError as exc:
                log.error("final snapshot failed: %s", exc)
        self._server = None
        self._background.clear()
        log.info("stopped; %s", self.metrics.format_log_line())

    def request_stop(self) -> None:
        """Ask a running :meth:`serve_forever` to shut down gracefully."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self) -> None:
        """Start, serve until a stop signal/request, then stop."""
        await self.start()
        assert self._stop_event is not None
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop_event.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-unix event loop, or not on the main thread
        try:
            await self._stop_event.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.stop()

    def run(self) -> None:
        """Blocking entry point (used by ``repro-serve serve``)."""
        asyncio.run(self.serve_forever())
