"""The asyncio daemon serving the filecule-management protocol.

Concurrency model — one event loop, one writer per shard:

* every connection gets a **reader task** (decodes request lines and a
  **response queue**) and a **writer task** (sends responses back in
  request order).  The response queue is bounded: when a client pipelines
  faster than it drains responses, ``put`` blocks the reader, which stops
  reading the socket, which pushes back through TCP — per-connection
  backpressure with no explicit window bookkeeping.  The writer coalesces
  consecutive ready responses into one reused buffer and hands the kernel
  a single write;
* requests funnel into **state actor** tasks.  A plain
  :class:`~repro.service.state.ServiceState` gets one actor (the single
  writer); a :class:`~repro.service.shard.ShardedServiceState` gets one
  actor per shard, and per-site requests route to the owning shard's
  inbox (``state.route_request``).  Each actor drains its inbox in
  batches (up to ``batch_max`` per wakeup), handles the request, and
  **encodes the response to bytes immediately** — so response dicts never
  outlive the handling step, and reused state buffers cannot be observed
  mid-mutation by a later writer;
* ``SIGINT``/``SIGTERM`` (and the ``shutdown`` op) trigger a graceful
  stop: stop accepting, unblock connected readers, let the actors drain
  every in-flight request, write a final snapshot if configured.

For multi-process deployments (:mod:`repro.service.cluster`), the server
accepts ``reuse_port=True`` (each worker binds its own ``SO_REUSEPORT``
acceptor on the shared port) or ``sock=`` (a pre-bound listening socket
inherited from the parent — the fallback on platforms without
``SO_REUSEPORT``).

Observability (see ``docs/OBSERVABILITY.md``): every handled request is
recorded as a span in a bounded ring buffer (exported as JSONL on
shutdown when ``span_log_path`` is set), carrying the client-supplied
``rid``; requests slower than ``slow_op_seconds`` emit a structured
``slow-op`` log line with that rid; the ``metrics`` op — and, when
``metrics_port`` is set, a tiny HTTP admin endpoint — expose the
registry.  The admin endpoint serves ``/metrics`` (Prometheus text),
``/stats``, ``/partition`` and ``/registry`` (JSON — the latter is the
full-fidelity :meth:`MetricsRegistry.state_dict` that cross-worker
aggregation merges), ``/history`` and ``/spans`` (the flight recorder's
time series/health events and the live span ring buffer), ``/healthz``
and ``/snapshot``.

When ``sample_interval`` is set, a background task feeds the flight
recorder (:mod:`repro.obs.timeseries`) on that cadence, and ``health``
additionally runs the online detector panel (:mod:`repro.obs.health`)
over the sampled series — firings surface as ``health_events`` counter
increments, structured ``health-event`` log lines, the ``history``
payload, and a JSONL export on shutdown when ``health_log_path`` is
set.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket as socket_module
import time

from repro.obs import trace as obstrace
from repro.obs.health import HealthMonitor
from repro.obs.log import get_logger
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_CAPACITY as DEFAULT_SERIES_CAPACITY,
    DEFAULT_INTERVAL as DEFAULT_SAMPLE_INTERVAL,
    TimeSeriesRecorder,
)
from repro.service.protocol import (
    INGEST_OK_TEMPLATE,
    RESULT_OK_TEMPLATE,
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    encode_response,
    error_response,
    ok_response,
)
from repro.service.state import SnapshotError

slog = get_logger("repro.service")

_STOP = object()  # sentinel closing a connection's response queue


def _batch_bucket(n: int) -> str:
    """Power-of-two bucket label for the writer-batch-size histogram."""
    if n <= 2:
        return str(n)
    if n > 64:
        return "65+"
    hi = 1 << (n - 1).bit_length()
    return f"{hi // 2 + 1}-{hi}"

#: Stop coalescing responses into one write beyond this many bytes.
WRITE_COALESCE_BYTES = 256 * 1024

#: True when the platform can load-balance accepts across processes.
HAS_REUSEPORT = hasattr(socket_module, "SO_REUSEPORT")


class FileculeServer:
    """Serve a service state over newline-delimited JSON TCP.

    Parameters
    ----------
    state:
        The service state — a :class:`~repro.service.state.ServiceState`
        or a :class:`~repro.service.shard.ShardedServiceState` (restored
        from a snapshot by the caller if desired).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (exposed as
        :attr:`port` after :meth:`start`).
    batch_max:
        Maximum requests a state actor handles per wakeup.
    pending_per_connection:
        Bound on a connection's unsent responses before its reader stops
        accepting new requests (per-connection backpressure window).
    snapshot_path, snapshot_interval:
        When both are set, the hard state is snapshotted every
        ``snapshot_interval`` seconds and once more on shutdown.
    log_interval:
        Seconds between periodic metrics log lines (None disables).
    metrics_port:
        When set, also serve the HTTP admin endpoint on this port
        (0 picks an ephemeral port, exposed as :attr:`metrics_port`
        after :meth:`start`).
    span_log_path:
        When set, the span ring buffer is exported there as JSONL on
        shutdown.
    span_capacity:
        Ring-buffer size of the per-server span recorder.
    sample_interval:
        When set, a sampler task feeds the flight recorder
        (:class:`~repro.obs.timeseries.TimeSeriesRecorder`) every
        ``sample_interval`` seconds; the series are served by the
        ``history`` op and the ``/history`` admin route.
    series_capacity:
        Ring capacity per flight-recorder series (constant memory).
    health:
        Run the default detector panel (:mod:`repro.obs.health`) on each
        sample; events surface in the ``history`` payload, the
        ``health_events`` counter and structured log lines.  Requires
        ``sample_interval``.
    health_log_path:
        When set, retained health events are exported there as JSONL on
        shutdown.
    slow_op_seconds:
        Requests handled slower than this emit a ``slow-op`` structured
        log line carrying the request's ``rid``.
    coalesce_ingest:
        When True (default) and the state exposes ``ingest_batch``, each
        actor wakeup hands its maximal runs of consecutive queued
        fast-path ingest requests to the state as one kernel call
        (per-request responses are still rendered individually and in
        order).  Disable to force the per-job ingest path.
    reuse_port:
        Bind the data port with ``SO_REUSEPORT`` so sibling worker
        processes can share it (the kernel load-balances accepts).
    sock:
        Pre-bound listening socket to serve on instead of binding
        ``host:port`` — the parent-socket-inheritance fallback for
        platforms without ``SO_REUSEPORT``.
    worker_index:
        Cluster worker index (surfaces in logs and ``/healthz``); None
        for a standalone daemon.
    """

    def __init__(
        self,
        state,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_max: int = 64,
        pending_per_connection: int = 128,
        snapshot_path: str | None = None,
        snapshot_interval: float | None = None,
        log_interval: float | None = None,
        metrics_port: int | None = None,
        span_log_path: str | None = None,
        span_capacity: int = obstrace.DEFAULT_CAPACITY,
        sample_interval: float | None = None,
        series_capacity: int = DEFAULT_SERIES_CAPACITY,
        health: bool = False,
        health_log_path: str | None = None,
        slow_op_seconds: float = 0.25,
        coalesce_ingest: bool = True,
        reuse_port: bool = False,
        sock: socket_module.socket | None = None,
        worker_index: int | None = None,
    ) -> None:
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if pending_per_connection < 1:
            raise ValueError(
                f"pending_per_connection must be >= 1, got {pending_per_connection}"
            )
        if reuse_port and not HAS_REUSEPORT:
            raise ValueError("this platform has no SO_REUSEPORT; pass sock=")
        self.state = state
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.pending_per_connection = pending_per_connection
        self.snapshot_path = snapshot_path
        self.snapshot_interval = snapshot_interval
        self.log_interval = log_interval
        self.metrics_port = metrics_port
        self.span_log_path = span_log_path
        self.slow_op_seconds = slow_op_seconds
        self.coalesce_ingest = coalesce_ingest
        self.reuse_port = reuse_port
        self.worker_index = worker_index
        self.metrics = MetricsRegistry()
        self.spans = obstrace.SpanRecorder(span_capacity)
        if health and sample_interval is None:
            raise ValueError("health monitoring requires sample_interval")
        self.sample_interval = sample_interval
        self.health_log_path = health_log_path
        # The recorder always exists (the history op answers even when
        # sampling is off — with empty series); the monitor only under
        # --health.
        self.recorder = TimeSeriesRecorder(
            sample_interval if sample_interval else DEFAULT_SAMPLE_INTERVAL,
            capacity=series_capacity,
        )
        self.health = HealthMonitor(self.recorder) if health else None
        self._listen_sock = sock
        self._metrics_server: asyncio.AbstractServer | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        self._background: list[asyncio.Task] = []
        self._connections: set[asyncio.Task] = set()
        # One inbox + actor per shard; a plain state gets exactly one.
        # ``route_request`` (sharded states) maps a request to its
        # owning shard's actor — requests for different shards never
        # contend on one queue.
        self._route = getattr(state, "route_request", None)
        self._n_actors = (
            getattr(state, "n_shards", 1) if self._route is not None else 1
        )
        self._inboxes: list[asyncio.Queue] = []
        self._actor_tasks: list[asyncio.Task] = []
        # Interned-op dispatch: one dict hit replaces the if/elif chain
        # (ops are interned by decode_request, so lookup is by identity).
        self._ops = {
            "ping": self._op_ping,
            "ingest": self._op_ingest,
            "filecule_of": self._op_filecule_of,
            "advise": self._op_advise,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
            "history": self._op_history,
            "spans": self._op_spans,
            "partition": self._op_partition,
            "snapshot": self._op_snapshot,
            "shutdown": self._op_shutdown,
        }

    # ------------------------------------------------------------------
    # request handling (runs on a state actor)
    # ------------------------------------------------------------------
    def _op_ping(self, request: dict) -> dict:
        return {"pong": True, "jobs_observed": self.state.jobs_observed}

    def _op_ingest(self, request: dict) -> dict:
        return self.state.ingest(
            request["files"], request["sizes"], request["site"]
        )

    def _op_filecule_of(self, request: dict) -> dict:
        return self.state.filecule_of(request["file"])

    def _op_advise(self, request: dict) -> dict:
        return self.state.advise(request["files"], request["site"])

    def _op_stats(self, request: dict) -> dict:
        result = self.state.stats()
        result["server"] = self.metrics.snapshot()
        return result

    def _op_metrics(self, request: dict) -> dict:
        return {
            "content_type": PROMETHEUS_CONTENT_TYPE,
            "body": self.expose_metrics(),
        }

    def _op_history(self, request: dict) -> dict:
        return self.history_payload(last=request.get("last"))

    def _op_spans(self, request: dict) -> dict:
        return self.spans_payload(last=request.get("last"))

    def _op_partition(self, request: dict) -> dict:
        return self.state.partition()

    def _op_snapshot(self, request: dict) -> dict:
        path = request["path"] or self.snapshot_path
        if path is None:
            raise ProtocolError(
                "bad-request",
                "no 'path' given and the server has no snapshot path",
            )
        return self.state.snapshot(path)

    def _op_shutdown(self, request: dict) -> dict:
        assert self._stop_event is not None
        asyncio.get_running_loop().call_soon(self._stop_event.set)
        return {"stopping": True}

    def _handle(self, request: dict) -> dict:
        op = request["op"]
        request_id = request["id"]
        rid = request.get("rid")
        try:
            result = self._ops[op](request)
        except ProtocolError as exc:
            self.metrics.inc("errors")
            return error_response(request_id, exc.code, exc.message, rid=rid)
        except SnapshotError as exc:
            self.metrics.inc("errors")
            return error_response(request_id, "snapshot-error", str(exc), rid=rid)
        except Exception as exc:  # noqa: BLE001 — fault barrier
            slog.error(
                "internal-error",
                op=op,
                rid=rid,
                error=f"{type(exc).__name__}: {exc}",
            )
            self.metrics.inc("errors")
            return error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}", rid=rid
            )
        return ok_response(request_id, result, rid=rid)

    def _set_state_gauges(self, stats: dict) -> None:
        """Republish live state stats as registry gauges.

        Shared by the exposition path and the flight-recorder sampler, so
        both see the same vocabulary (``site_requests``/``site_hits`` are
        monotone totals the recorder differentiates into rates).
        """
        self.metrics.set_gauge("jobs_observed", stats["jobs_observed"])
        self.metrics.set_gauge("files_observed", stats["files_observed"])
        self.metrics.set_gauge("filecule_classes", stats["n_classes"])
        self.metrics.set_gauge("span_buffer_spans", len(self.spans))
        if self.worker_index is not None:
            # Which cluster worker this scrape came from — lets a scraper
            # of base+k ports attribute samples without port arithmetic.
            self.metrics.set_gauge("worker_index", self.worker_index)
        for site, adv in stats["sites"].items():
            self.metrics.set_gauge("site_hit_rate", adv["hit_rate"], site=site)
            self.metrics.set_gauge(
                "site_byte_miss_rate", adv["byte_miss_rate"], site=site
            )
            self.metrics.set_gauge(
                "site_used_bytes", adv["used_bytes"], site=site
            )
            self.metrics.set_gauge(
                "site_requests", adv["requests"], site=site
            )
            self.metrics.set_gauge("site_hits", adv["hits"], site=site)

    def expose_metrics(self) -> str:
        """Prometheus text exposition: server registry + live state gauges."""
        self._set_state_gauges(self.state.stats())
        return self.metrics.expose()

    # ------------------------------------------------------------------
    # flight recorder
    # ------------------------------------------------------------------
    def sample_once(self, now: float | None = None) -> None:
        """Take one flight-recorder sample (and run detectors if on)."""
        if now is None:
            now = time.monotonic()
        self._set_state_gauges(self.state.stats())
        self.recorder.sample(self.metrics, now)
        if self.health is not None:
            for event in self.health.observe():
                self.metrics.inc(
                    "health_events",
                    detector=event.detector,
                    severity=event.severity,
                )
                log = slog.error if event.severity == "critical" else slog.warning
                log(
                    "health-event",
                    detector=event.detector,
                    severity=event.severity,
                    message=event.message,
                    **{k: v for k, v in event.evidence.items() if k != "message"},
                )

    def history_payload(self, last: int | None = None) -> dict:
        """The ``history`` op / ``/history`` admin body: series + events."""
        payload = self.recorder.payload(last=last)
        payload["enabled"] = self.sample_interval is not None
        payload["health"] = {
            "enabled": self.health is not None,
            "events": [e.as_dict() for e in self.health.events()]
            if self.health is not None
            else [],
        }
        if self.worker_index is not None:
            payload["worker"] = self.worker_index
        return payload

    def spans_payload(self, last: int | None = None) -> dict:
        """The ``spans`` op / ``/spans`` admin body: the live ring buffer."""
        spans = self.spans.spans()
        if last is not None and last >= 1:
            spans = spans[-last:]
        payload = {
            "capacity": self.spans.capacity,
            "dropped": self.spans.dropped,
            "count": len(spans),
            "spans": [s.as_dict() for s in spans],
        }
        if self.worker_index is not None:
            payload["worker"] = self.worker_index
        return payload

    def _ingest_run(self, run: list) -> None:
        """Handle one coalesced run of fast-path ingest requests.

        One ``ingest_batch`` state call for the whole run; per-request
        receipts render through the wire template individually and in
        order, so clients cannot tell coalesced from per-job handling.
        Like the single fast path, the state call is not retried on
        failure (it may have partially mutated state); every request in
        the run then gets an ``internal`` error carrying its own id.
        """
        metrics = self.metrics
        n_jobs = len(run)
        t0 = time.perf_counter()
        with obstrace.span(
            "op.ingest.batch", recorder=self.spans
        ) as span_fields:
            span_fields["jobs"] = n_jobs
            try:
                receipts = self.state.ingest_batch(
                    [(r["files"], r["sizes"], r["site"]) for r, _, _ in run]
                )
                datas = [
                    INGEST_OK_TEMPLATE
                    % (
                        r["id"],
                        receipt["job_seq"],
                        receipt["n_files"],
                        receipt["n_classes"],
                        receipt["site_hits"],
                    )
                    for (r, _, _), receipt in zip(run, receipts)
                ]
                span_fields["ok"] = True
            except Exception as exc:  # noqa: BLE001 — fault barrier
                slog.error(
                    "internal-error",
                    op="ingest.batch",
                    jobs=n_jobs,
                    error=f"{type(exc).__name__}: {exc}",
                )
                metrics.inc("errors", n_jobs)
                datas = [
                    encode_response(
                        error_response(
                            r["id"],
                            "internal",
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                    for r, _, _ in run
                ]
                span_fields["ok"] = False
        t1 = time.perf_counter()
        amortized = (t1 - t0) / n_jobs
        metrics.inc("requests", n_jobs)
        metrics.inc("ingest_batches")
        metrics.inc("ingest_batch_jobs", jobs=_batch_bucket(n_jobs))
        metrics.observe_many("op.ingest", amortized, n_jobs)
        observe = metrics.observe
        for _, _, t_enqueued in run:
            observe("queue_wait", t0 - t_enqueued)
        if amortized >= self.slow_op_seconds:
            metrics.inc("slow_ops", n_jobs)
            slog.warning(
                "slow-op",
                op="ingest.batch",
                jobs=n_jobs,
                duration_ms=round((t1 - t0) * 1e3, 3),
            )
        for (_, future, _), data in zip(run, datas):
            if not future.done():
                future.set_result(data)

    async def _actor(self, inbox: asyncio.Queue) -> None:
        metrics = self.metrics
        state_ingest = self.state.ingest
        ingest_batch = (
            getattr(self.state, "ingest_batch", None)
            if self.coalesce_ingest
            else None
        )
        # Plain states expose the memoized filecule_of payload; sharded
        # states (cross-shard meet per lookup) take the generic path.
        filecule_json = getattr(self.state, "filecule_of_json", None)
        perf_counter = time.perf_counter
        while True:
            batch = [await inbox.get()]
            while len(batch) < self.batch_max:
                try:
                    batch.append(inbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            metrics.inc("batches")  # mean batch size = requests/batches
            metrics.set_gauge("actor_queue_depth", inbox.qsize())
            n = len(batch)
            i = 0
            while i < n:
                request, future, t_enqueued = batch[i]
                op = request["op"]
                rid = request.get("rid")
                # Coalesce a maximal run of consecutive fast-path
                # ingests into one kernel call.  Only *consecutive*
                # requests coalesce: an interleaved read must observe
                # exactly the ingests queued before it, so it breaks
                # the run.
                if (
                    ingest_batch is not None
                    and op == "ingest"
                    and rid is None
                    and type(request["id"]) is int
                ):
                    j = i + 1
                    while j < n:
                        r = batch[j][0]
                        if (
                            r["op"] == "ingest"
                            and r.get("rid") is None
                            and type(r["id"]) is int
                        ):
                            j += 1
                        else:
                            break
                    if j - i >= 2:
                        self._ingest_run(batch[i:j])
                        i = j
                        continue
                self._handle_one(request, future, t_enqueued)
                i += 1
            # Yield so connection writers interleave with the next batch.
            await asyncio.sleep(0)

    def _handle_one(self, request: dict, future, t_enqueued: float) -> None:
        metrics = self.metrics
        state_ingest = self.state.ingest
        filecule_json = getattr(self.state, "filecule_of_json", None)
        perf_counter = time.perf_counter
        op = request["op"]
        rid = request.get("rid")
        t0 = perf_counter()
        with obstrace.span(
            f"op.{op}", recorder=self.spans, rid=rid
        ) as span_fields:
            # Hot path: a plain-int-id, untraced ingest renders
            # its receipt straight through the wire template —
            # no response dict, no json.dumps.  The state call
            # is NOT retried on failure (it may already have
            # mutated state); errors map exactly as in _handle.
            if (
                op == "ingest"
                and rid is None
                and type(request["id"]) is int
            ):
                # A writer batch of one: keep the batch-size
                # histogram honest for mixed traffic.
                metrics.inc("ingest_batches")
                metrics.inc("ingest_batch_jobs", jobs="1")
                try:
                    r = state_ingest(
                        request["files"],
                        request["sizes"],
                        request["site"],
                    )
                    data = INGEST_OK_TEMPLATE % (
                        request["id"],
                        r["job_seq"],
                        r["n_files"],
                        r["n_classes"],
                        r["site_hits"],
                    )
                    span_fields["ok"] = True
                except Exception as exc:  # noqa: BLE001 — fault barrier
                    slog.error(
                        "internal-error",
                        op=op,
                        rid=rid,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    metrics.inc("errors")
                    data = encode_response(
                        error_response(
                            request["id"],
                            "internal",
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                    span_fields["ok"] = False
            elif (
                op == "filecule_of"
                and filecule_json is not None
                and rid is None
                and type(request["id"]) is int
            ):
                # Read fast path: the state serves a memoized,
                # already-encoded payload; only the envelope is
                # rendered per request.
                try:
                    data = RESULT_OK_TEMPLATE % (
                        request["id"],
                        filecule_json(request["file"]),
                    )
                    span_fields["ok"] = True
                except Exception as exc:  # noqa: BLE001 — fault barrier
                    slog.error(
                        "internal-error",
                        op=op,
                        rid=rid,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    metrics.inc("errors")
                    data = encode_response(
                        error_response(
                            request["id"],
                            "internal",
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                    span_fields["ok"] = False
            else:
                response = self._handle(request)
                span_fields["ok"] = response["ok"]
                # Encode on the actor: the response (and anything
                # the state lent it) is serialized before the
                # next request can mutate state, and the writer
                # only ever sees bytes.
                data = encode_response(response)
        t1 = perf_counter()
        metrics.inc("requests")
        metrics.observe(f"op.{op}", t1 - t0)
        metrics.observe("queue_wait", t0 - t_enqueued)
        if t1 - t0 >= self.slow_op_seconds:
            metrics.inc("slow_ops")
            slog.warning(
                "slow-op",
                op=op,
                rid=rid,
                duration_ms=round((t1 - t0) * 1e3, 3),
                queue_wait_ms=round((t0 - t_enqueued) * 1e3, 3),
            )
        if not future.done():
            future.set_result(data)

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    async def _write_responses(
        self, outbox: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        # Coalesce consecutive *ready* responses into one reused buffer →
        # one transport write per wakeup instead of one per response.
        buffer = bytearray()
        pending = None
        while True:
            item = pending if pending is not None else await outbox.get()
            pending = None
            if item is _STOP:
                return
            del buffer[:]
            buffer += await item
            closing = False
            while len(buffer) < WRITE_COALESCE_BYTES:
                try:
                    nxt = outbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _STOP:
                    closing = True
                    break
                if not nxt.done():
                    # Not ready: flush what we have, resume with it next.
                    pending = nxt
                    break
                buffer += nxt.result()
            self.metrics.inc("writes")
            writer.write(bytes(buffer))
            await writer.drain()  # client-side backpressure
            if closing:
                return

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.inc("connections")
        loop = asyncio.get_running_loop()
        outbox: asyncio.Queue = asyncio.Queue(maxsize=self.pending_per_connection)
        writer_task = asyncio.create_task(self._write_responses(outbox, writer))
        inboxes = self._inboxes
        route = self._route
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # line exceeded the stream limit (MAX_LINE_BYTES)
                    future = loop.create_future()
                    future.set_result(
                        encode_response(
                            error_response(
                                None,
                                "too-large",
                                f"request line exceeds {MAX_LINE_BYTES} bytes",
                            )
                        )
                    )
                    await outbox.put(future)
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                future = loop.create_future()
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    self.metrics.inc("errors")
                    # Echo the request id when the line was at least valid
                    # JSON, so a pipelining client can pair the error with
                    # its request instead of declaring the stream broken.
                    future.set_result(
                        encode_response(
                            error_response(
                                _salvage_id(line), exc.code, exc.message
                            )
                        )
                    )
                    await outbox.put(future)
                    continue
                # Hand to the owning actor first so the future always
                # resolves, then to the outbox.  Inboxes are unbounded,
                # so put_nowait never fails and skips the coroutine
                # overhead of an await.  The outbox is the backpressure
                # point: blocks when the client has
                # pending_per_connection unanswered requests.
                idx = route(request) if route is not None else 0
                inboxes[idx].put_nowait((request, future, time.perf_counter()))
                if outbox.full():
                    await outbox.put(future)
                else:
                    outbox.put_nowait(future)
        except ConnectionError:
            pass
        finally:
            try:
                outbox.put_nowait(_STOP)
            except asyncio.QueueFull:
                writer_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, ConnectionError):
                await writer_task
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    def _track_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.create_task(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    # ------------------------------------------------------------------
    # HTTP admin endpoint (optional)
    # ------------------------------------------------------------------
    def _admin_response(self, method: str, path: str) -> tuple[str, str, bytes]:
        """Route one admin request → ``(status, content_type, body)``."""
        route, _, query = path.partition("?")
        if method not in ("GET", "POST"):
            return "405 Method Not Allowed", "text/plain", b"method not allowed\n"
        if route in ("/metrics", "/"):
            return "200 OK", PROMETHEUS_CONTENT_TYPE, self.expose_metrics().encode()
        if route == "/stats":
            stats = self.state.stats()
            stats["server"] = self.metrics.snapshot()
            return "200 OK", "application/json", _json_bytes(stats)
        if route == "/partition":
            return "200 OK", "application/json", _json_bytes(self.state.partition())
        if route == "/registry":
            # Full-fidelity registry (bucket-exact histograms): what a
            # cross-worker aggregator merges via MetricsRegistry.merge.
            return "200 OK", "application/json", _json_bytes(self.metrics.state_dict())
        if route == "/history":
            return "200 OK", "application/json", _json_bytes(
                self.history_payload(last=_query_int(query, "last"))
            )
        if route == "/spans":
            return "200 OK", "application/json", _json_bytes(
                self.spans_payload(last=_query_int(query, "last"))
            )
        if route == "/healthz":
            return "200 OK", "application/json", _json_bytes(
                {
                    "ok": True,
                    "worker": self.worker_index,
                    "pid": os.getpid(),
                    "port": self.port,
                    "jobs_observed": self.state.jobs_observed,
                }
            )
        if route == "/snapshot":
            if self.snapshot_path is None:
                return (
                    "409 Conflict",
                    "application/json",
                    _json_bytes({"ok": False, "error": "no snapshot path configured"}),
                )
            try:
                receipt = self.state.snapshot(self.snapshot_path)
            except SnapshotError as exc:
                self.metrics.inc("snapshot_failures")
                return (
                    "500 Internal Server Error",
                    "application/json",
                    _json_bytes({"ok": False, "error": str(exc)}),
                )
            self.metrics.inc("snapshots")
            return "200 OK", "application/json", _json_bytes({"ok": True, **receipt})
        return "404 Not Found", "text/plain", (
            b"try /metrics /stats /partition /registry /history /spans"
            b" /healthz /snapshot\n"
        )

    async def _handle_admin_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal one-shot HTTP/1.0 responder for the admin endpoint.

        Deliberately tiny: no keep-alive, no chunking, 5 s header
        timeout — just enough for a Prometheus scraper, an aggregator or
        ``curl``.
        """
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            while True:  # drain headers
                header = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) >= 2 else "/"
            status, content_type, body = self._admin_response(method, path)
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode()
            )
            writer.write(body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # background maintenance
    # ------------------------------------------------------------------
    async def _periodic_snapshot(self) -> None:
        assert self.snapshot_path is not None and self.snapshot_interval
        while True:
            await asyncio.sleep(self.snapshot_interval)
            try:
                receipt = self.state.snapshot(self.snapshot_path)
                self.metrics.inc("snapshots")
                slog.info("snapshot-written", **receipt)
            except SnapshotError as exc:
                self.metrics.inc("snapshot_failures")
                slog.error("snapshot-failed", error=str(exc))

    async def _periodic_log(self) -> None:
        assert self.log_interval
        while True:
            await asyncio.sleep(self.log_interval)
            slog.info("metrics", **self.metrics.snapshot())

    async def _periodic_sample(self) -> None:
        assert self.sample_interval
        while True:
            await asyncio.sleep(self.sample_interval)
            self.sample_once()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving; returns once the socket is listening."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._inboxes = [asyncio.Queue() for _ in range(self._n_actors)]
        self._stop_event = asyncio.Event()
        self._actor_tasks = [
            asyncio.create_task(self._actor(inbox)) for inbox in self._inboxes
        ]
        if self.snapshot_path and self.snapshot_interval:
            self._background.append(asyncio.create_task(self._periodic_snapshot()))
        if self.log_interval:
            self._background.append(asyncio.create_task(self._periodic_log()))
        if self.sample_interval:
            # Establish delta baselines immediately so the first periodic
            # tick already yields rates.
            self.sample_once()
            self._background.append(asyncio.create_task(self._periodic_sample()))
        if self._listen_sock is not None:
            self._server = await asyncio.start_server(
                self._track_connection,
                sock=self._listen_sock,
                limit=MAX_LINE_BYTES,
            )
        else:
            self._server = await asyncio.start_server(
                self._track_connection,
                self.host,
                self.port,
                limit=MAX_LINE_BYTES,
                **({"reuse_port": True} if self.reuse_port else {}),
            )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_admin_http, self.host, self.metrics_port
            )
            self.metrics_port = self._metrics_server.sockets[0].getsockname()[1]
        slog.info(
            "serving",
            host=self.host,
            port=self.port,
            worker=self.worker_index,
            actors=self._n_actors,
            policy=self.state.policy_name,
            capacity_bytes=self.state.capacity_bytes,
            metrics_port=self.metrics_port,
        )

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, snapshot, release."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        # Unblock connected readers so their tasks can finish cleanly.
        for task in list(self._connections):
            task.cancel()
        await asyncio.gather(*self._connections, return_exceptions=True)
        # Let the actors answer everything already accepted.
        while any(not inbox.empty() for inbox in self._inboxes):
            await asyncio.sleep(0)
        for task in self._actor_tasks:
            task.cancel()
        for task in self._background:
            task.cancel()
        await asyncio.gather(
            *self._actor_tasks, *self._background, return_exceptions=True
        )
        if self.snapshot_path:
            try:
                receipt = self.state.snapshot(self.snapshot_path)
                slog.info("final-snapshot-written", **receipt)
            except SnapshotError as exc:
                slog.error("final-snapshot-failed", error=str(exc))
        if self.span_log_path:
            try:
                exported = self.spans.export_jsonl(self.span_log_path)
                slog.info(
                    "span-log-written",
                    path=str(self.span_log_path),
                    spans=exported,
                    dropped=self.spans.dropped,
                )
            except OSError as exc:
                slog.error("span-log-failed", error=str(exc))
        if self.health_log_path and self.health is not None:
            try:
                exported = self.health.export_jsonl(self.health_log_path)
                slog.info(
                    "health-log-written",
                    path=str(self.health_log_path),
                    events=exported,
                    dropped=self.health.dropped,
                )
            except OSError as exc:
                slog.error("health-log-failed", error=str(exc))
        self._server = None
        self._actor_tasks = []
        self._background.clear()
        slog.info("stopped", **self.metrics.snapshot())

    def request_stop(self) -> None:
        """Ask a running :meth:`serve_forever` to shut down gracefully."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self, ready_callback=None) -> None:
        """Start, serve until a stop signal/request, then stop.

        ``ready_callback(server)``, when given, runs right after the
        sockets are bound — cluster workers use it to report their
        resolved ports to the parent process.
        """
        await self.start()
        if ready_callback is not None:
            ready_callback(self)
        assert self._stop_event is not None
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop_event.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-unix event loop, or not on the main thread
        try:
            await self._stop_event.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.stop()

    def run(self) -> None:
        """Blocking entry point (used by ``repro-serve serve``)."""
        asyncio.run(self.serve_forever())


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def _query_int(query: str, key: str) -> int | None:
    """Pull a positive integer out of an admin-route query string."""
    for pair in query.split("&"):
        k, _, v = pair.partition("=")
        if k == key and v.isdigit() and int(v) >= 1:
            return int(v)
    return None


def _salvage_id(line: bytes | str):
    """Best-effort request id from a line that failed validation."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(obj, dict):
        request_id = obj.get("id")
        if isinstance(request_id, (int, str)):
            return request_id
    return None
