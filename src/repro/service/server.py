"""The asyncio daemon serving the filecule-management protocol.

Concurrency model — one event loop, one writer:

* every connection gets a **reader task** (decodes request lines and a
  **response queue**) and a **writer task** (sends responses back in
  request order).  The response queue is bounded: when a client pipelines
  faster than it drains responses, ``put`` blocks the reader, which stops
  reading the socket, which pushes back through TCP — per-connection
  backpressure with no explicit window bookkeeping;
* all requests from all connections funnel into a single **state actor**
  task that owns :class:`~repro.service.state.ServiceState`.  The actor
  drains its inbox in batches (up to ``batch_max`` per wakeup), so under
  load the per-request scheduling overhead amortizes across the batch
  while state mutations stay strictly serialized;
* ``SIGINT``/``SIGTERM`` (and the ``shutdown`` op) trigger a graceful
  stop: stop accepting, unblock connected readers, let the actor drain
  every in-flight request, write a final snapshot if configured.

Observability (see ``docs/OBSERVABILITY.md``): every handled request is
recorded as a span in a bounded ring buffer (exported as JSONL on
shutdown when ``span_log_path`` is set), carrying the client-supplied
``rid``; requests slower than ``slow_op_seconds`` emit a structured
``slow-op`` log line with that rid; the ``metrics`` op — and, when
``metrics_port`` is set, a tiny HTTP endpoint at ``/metrics`` — expose
the registry in Prometheus text format.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time

from repro.obs import trace as obstrace
from repro.obs.log import get_logger
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE, MetricsRegistry
from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    encode_response,
    error_response,
    ok_response,
)
from repro.service.state import ServiceState, SnapshotError

slog = get_logger("repro.service")

_STOP = object()  # sentinel closing a connection's response queue


class FileculeServer:
    """Serve a :class:`ServiceState` over newline-delimited JSON TCP.

    Parameters
    ----------
    state:
        The service state (restored from a snapshot by the caller if
        desired).
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (exposed as
        :attr:`port` after :meth:`start`).
    batch_max:
        Maximum requests the state actor handles per wakeup.
    pending_per_connection:
        Bound on a connection's unsent responses before its reader stops
        accepting new requests (per-connection backpressure window).
    snapshot_path, snapshot_interval:
        When both are set, the hard state is snapshotted every
        ``snapshot_interval`` seconds and once more on shutdown.
    log_interval:
        Seconds between periodic metrics log lines (None disables).
    metrics_port:
        When set, also serve Prometheus text exposition over HTTP at
        ``GET /metrics`` on this port (0 picks an ephemeral port,
        exposed as :attr:`metrics_port` after :meth:`start`).
    span_log_path:
        When set, the span ring buffer is exported there as JSONL on
        shutdown.
    span_capacity:
        Ring-buffer size of the per-server span recorder.
    slow_op_seconds:
        Requests handled slower than this emit a ``slow-op`` structured
        log line carrying the request's ``rid``.
    """

    def __init__(
        self,
        state: ServiceState,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        batch_max: int = 64,
        pending_per_connection: int = 128,
        snapshot_path: str | None = None,
        snapshot_interval: float | None = None,
        log_interval: float | None = None,
        metrics_port: int | None = None,
        span_log_path: str | None = None,
        span_capacity: int = obstrace.DEFAULT_CAPACITY,
        slow_op_seconds: float = 0.25,
    ) -> None:
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if pending_per_connection < 1:
            raise ValueError(
                f"pending_per_connection must be >= 1, got {pending_per_connection}"
            )
        self.state = state
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.pending_per_connection = pending_per_connection
        self.snapshot_path = snapshot_path
        self.snapshot_interval = snapshot_interval
        self.log_interval = log_interval
        self.metrics_port = metrics_port
        self.span_log_path = span_log_path
        self.slow_op_seconds = slow_op_seconds
        self.metrics = MetricsRegistry()
        self.spans = obstrace.SpanRecorder(span_capacity)
        self._metrics_server: asyncio.AbstractServer | None = None
        self._server: asyncio.AbstractServer | None = None
        self._inbox: asyncio.Queue | None = None
        self._stop_event: asyncio.Event | None = None
        self._actor_task: asyncio.Task | None = None
        self._background: list[asyncio.Task] = []
        self._connections: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # request handling (runs on the actor — the single writer)
    # ------------------------------------------------------------------
    def _handle(self, request: dict) -> dict:
        op = request["op"]
        request_id = request["id"]
        rid = request.get("rid")
        try:
            if op == "ping":
                result = {
                    "pong": True,
                    "jobs_observed": self.state.stats()["jobs_observed"],
                }
            elif op == "ingest":
                result = self.state.ingest(
                    request["files"], request["sizes"], request["site"]
                )
            elif op == "filecule_of":
                result = self.state.filecule_of(request["file"])
            elif op == "advise":
                result = self.state.advise(request["files"], request["site"])
            elif op == "stats":
                result = self.state.stats()
                result["server"] = self.metrics.snapshot()
            elif op == "metrics":
                result = {
                    "content_type": PROMETHEUS_CONTENT_TYPE,
                    "body": self.expose_metrics(),
                }
            elif op == "partition":
                result = self.state.partition()
            elif op == "snapshot":
                path = request["path"] or self.snapshot_path
                if path is None:
                    raise ProtocolError(
                        "bad-request",
                        "no 'path' given and the server has no snapshot path",
                    )
                result = self.state.snapshot(path)
            elif op == "shutdown":
                result = {"stopping": True}
                assert self._stop_event is not None
                asyncio.get_running_loop().call_soon(self._stop_event.set)
            else:  # unreachable: decode_request validates op
                raise ProtocolError("unknown-op", f"unknown op {op!r}")
        except ProtocolError as exc:
            self.metrics.inc("errors")
            return error_response(request_id, exc.code, exc.message, rid=rid)
        except SnapshotError as exc:
            self.metrics.inc("errors")
            return error_response(request_id, "snapshot-error", str(exc), rid=rid)
        except Exception as exc:  # noqa: BLE001 — fault barrier
            slog.error(
                "internal-error",
                op=op,
                rid=rid,
                error=f"{type(exc).__name__}: {exc}",
            )
            self.metrics.inc("errors")
            return error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}", rid=rid
            )
        return ok_response(request_id, result, rid=rid)

    def expose_metrics(self) -> str:
        """Prometheus text exposition: server registry + live state gauges."""
        stats = self.state.stats()
        self.metrics.set_gauge("jobs_observed", stats["jobs_observed"])
        self.metrics.set_gauge("files_observed", stats["files_observed"])
        self.metrics.set_gauge("filecule_classes", stats["n_classes"])
        self.metrics.set_gauge("span_buffer_spans", len(self.spans))
        for site, adv in stats["sites"].items():
            self.metrics.set_gauge("site_hit_rate", adv["hit_rate"], site=site)
            self.metrics.set_gauge(
                "site_byte_miss_rate", adv["byte_miss_rate"], site=site
            )
            self.metrics.set_gauge(
                "site_used_bytes", adv["used_bytes"], site=site
            )
            self.metrics.set_gauge(
                "site_requests", adv["requests"], site=site
            )
        return self.metrics.expose()

    async def _actor(self) -> None:
        assert self._inbox is not None
        while True:
            batch = [await self._inbox.get()]
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._inbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.metrics.inc("batches")  # mean batch size = requests/batches
            for request, future, t_enqueued in batch:
                op = request["op"]
                rid = request.get("rid")
                t0 = time.perf_counter()
                with obstrace.span(
                    f"op.{op}", recorder=self.spans, rid=rid
                ) as span_fields:
                    response = self._handle(request)
                    span_fields["ok"] = response["ok"]
                t1 = time.perf_counter()
                self.metrics.inc("requests")
                self.metrics.observe(f"op.{op}", t1 - t0)
                self.metrics.observe("queue_wait", t0 - t_enqueued)
                if t1 - t0 >= self.slow_op_seconds:
                    self.metrics.inc("slow_ops")
                    slog.warning(
                        "slow-op",
                        op=op,
                        rid=rid,
                        duration_ms=round((t1 - t0) * 1e3, 3),
                        queue_wait_ms=round((t0 - t_enqueued) * 1e3, 3),
                    )
                if not future.done():
                    future.set_result(response)
            # Yield so connection writers interleave with the next batch.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # connection plumbing
    # ------------------------------------------------------------------
    async def _write_responses(
        self, outbox: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            item = await outbox.get()
            if item is _STOP:
                return
            response = await item
            writer.write(encode_response(response))
            await writer.drain()  # client-side backpressure

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.inc("connections")
        loop = asyncio.get_running_loop()
        outbox: asyncio.Queue = asyncio.Queue(maxsize=self.pending_per_connection)
        writer_task = asyncio.create_task(self._write_responses(outbox, writer))
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # line exceeded the stream limit (MAX_LINE_BYTES)
                    future = loop.create_future()
                    future.set_result(
                        error_response(
                            None,
                            "too-large",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        )
                    )
                    await outbox.put(future)
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                future = loop.create_future()
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    self.metrics.inc("errors")
                    future.set_result(error_response(None, exc.code, exc.message))
                    await outbox.put(future)
                    continue
                # Hand to the actor first so the future always resolves,
                # then to the outbox.  The outbox is the backpressure
                # point: blocks when the client has
                # pending_per_connection unanswered requests.
                assert self._inbox is not None
                await self._inbox.put((request, future, time.perf_counter()))
                await outbox.put(future)
        except ConnectionError:
            pass
        finally:
            try:
                outbox.put_nowait(_STOP)
            except asyncio.QueueFull:
                writer_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, ConnectionError):
                await writer_task
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    def _track_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.create_task(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    # ------------------------------------------------------------------
    # HTTP metrics exposition (optional, read-only)
    # ------------------------------------------------------------------
    async def _handle_metrics_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Minimal one-shot HTTP/1.0 responder for ``GET /metrics``.

        Deliberately tiny: no keep-alive, no chunking, 5 s header
        timeout — just enough for a Prometheus scraper or ``curl``.
        """
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            while True:  # drain headers
                header = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) >= 2 else "/"
            if method != "GET":
                status, body = "405 Method Not Allowed", b"method not allowed\n"
                content_type = "text/plain"
            elif path.split("?", 1)[0] in ("/metrics", "/"):
                status = "200 OK"
                body = self.expose_metrics().encode()
                content_type = PROMETHEUS_CONTENT_TYPE
            else:
                status, body = "404 Not Found", b"try /metrics\n"
                content_type = "text/plain"
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode()
            )
            writer.write(body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # background maintenance
    # ------------------------------------------------------------------
    async def _periodic_snapshot(self) -> None:
        assert self.snapshot_path is not None and self.snapshot_interval
        while True:
            await asyncio.sleep(self.snapshot_interval)
            try:
                receipt = self.state.snapshot(self.snapshot_path)
                self.metrics.inc("snapshots")
                slog.info("snapshot-written", **receipt)
            except SnapshotError as exc:
                self.metrics.inc("snapshot_failures")
                slog.error("snapshot-failed", error=str(exc))

    async def _periodic_log(self) -> None:
        assert self.log_interval
        while True:
            await asyncio.sleep(self.log_interval)
            slog.info("metrics", **self.metrics.snapshot())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving; returns once the socket is listening."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._inbox = asyncio.Queue()
        self._stop_event = asyncio.Event()
        self._actor_task = asyncio.create_task(self._actor())
        if self.snapshot_path and self.snapshot_interval:
            self._background.append(asyncio.create_task(self._periodic_snapshot()))
        if self.log_interval:
            self._background.append(asyncio.create_task(self._periodic_log()))
        self._server = await asyncio.start_server(
            self._track_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, self.host, self.metrics_port
            )
            self.metrics_port = self._metrics_server.sockets[0].getsockname()[1]
        slog.info(
            "serving",
            host=self.host,
            port=self.port,
            policy=self.state.policy_name,
            capacity_bytes=self.state.capacity_bytes,
            metrics_port=self.metrics_port,
        )

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, snapshot, release."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        # Unblock connected readers so their tasks can finish cleanly.
        for task in list(self._connections):
            task.cancel()
        await asyncio.gather(*self._connections, return_exceptions=True)
        # Let the actor answer everything already accepted.
        assert self._inbox is not None and self._actor_task is not None
        while not self._inbox.empty():
            await asyncio.sleep(0)
        self._actor_task.cancel()
        for task in self._background:
            task.cancel()
        await asyncio.gather(
            self._actor_task, *self._background, return_exceptions=True
        )
        if self.snapshot_path:
            try:
                receipt = self.state.snapshot(self.snapshot_path)
                slog.info("final-snapshot-written", **receipt)
            except SnapshotError as exc:
                slog.error("final-snapshot-failed", error=str(exc))
        if self.span_log_path:
            try:
                exported = self.spans.export_jsonl(self.span_log_path)
                slog.info(
                    "span-log-written",
                    path=str(self.span_log_path),
                    spans=exported,
                    dropped=self.spans.dropped,
                )
            except OSError as exc:
                slog.error("span-log-failed", error=str(exc))
        self._server = None
        self._background.clear()
        slog.info("stopped", **self.metrics.snapshot())

    def request_stop(self) -> None:
        """Ask a running :meth:`serve_forever` to shut down gracefully."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_forever(self) -> None:
        """Start, serve until a stop signal/request, then stop."""
        await self.start()
        assert self._stop_event is not None
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop_event.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-unix event loop, or not on the main thread
        try:
            await self._stop_event.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.stop()

    def run(self) -> None:
        """Blocking entry point (used by ``repro-serve serve``)."""
        asyncio.run(self.serve_forever())
