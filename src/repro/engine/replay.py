"""The shared trace-replay core: one policy, one capacity, one trace.

:func:`simulate` is the single replay loop every consumer shares — the
serial simulator façade (:mod:`repro.cache.simulator`), the parallel
sweep workers (:mod:`repro.parallel.runner`) and the benchmark drivers
all execute this exact code, which is what makes their results
bit-identical by construction.

Each traced job issues its input files at its start time, in job order;
every policy sees the identical request stream, so miss rates are
directly comparable.  With ``instrumentation=None`` a tight fast path
runs: the trace's columns are read as plain Python lists
(:attr:`~repro.traces.trace.Trace.replay_columns`, converted once per
trace, not per run), per-job values are hoisted out of the per-access
loop, and metrics counters accumulate in locals that are folded into
:class:`~repro.cache.base.CacheMetrics` once at the end.  The
instrumented path updates metrics per access (hooks observe live state)
and is guaranteed (and tested) to produce identical miss rates.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.cache.base import CacheMetrics, ReplacementPolicy
from repro.obs.instrument import Instrumentation
from repro.traces.trace import Trace

#: A factory building a fresh policy instance for a given capacity.
PolicyFactory = Callable[[int], ReplacementPolicy]


def simulate(
    trace: Trace,
    policy_factory: PolicyFactory | str,
    capacity: int,
    name: str | None = None,
    instrumentation: Instrumentation | None = None,
    *,
    partition=None,
    batch: bool | None = None,
) -> CacheMetrics:
    """Replay ``trace`` against a fresh policy of the given capacity.

    ``policy_factory`` is either a callable ``capacity -> policy`` or a
    policy *spec* (a registry name/spec string such as
    ``"filecule-lru?intra_job_hits=false"`` or a
    :class:`~repro.registry.BoundSpec`), resolved through
    :mod:`repro.registry` with this trace and the optional ``partition``
    as resources.

    ``instrumentation`` hooks observe the replay without affecting it;
    see :mod:`repro.obs.instrument`.

    ``batch`` selects the vectorized whole-trace kernel offered by
    batch-capable policies (:meth:`~repro.cache.base.ReplacementPolicy
    .batch_kernel`; bit-identical to per-access replay, tested).  The
    default ``None`` uses a kernel whenever the policy offers one,
    ``False`` forces the per-access path, ``True`` demands a kernel and
    raises :class:`ValueError` if the policy has none.  Kernels run only
    on the uninstrumented path — per-access hooks would defeat batching.
    """
    if not callable(policy_factory):
        # Spec-based selection.  The registry sits above the engine in
        # the layer map (it must see every policy class), so this upcall
        # is deliberately lazy — see docs/ARCHITECTURE.md.
        from repro import registry

        bound = registry.parse(policy_factory)
        policy = registry.build(
            bound, capacity, trace=trace, partition=partition
        )
        if name is None:
            name = str(bound)
    else:
        policy = policy_factory(capacity)
    metrics = CacheMetrics(
        name=name or policy.name, capacity_bytes=int(capacity)
    )
    if instrumentation is None:
        # Batch path: a policy-provided vectorized kernel replays the
        # whole trace without materializing the per-access list columns.
        if batch is not False:
            kernel = policy.batch_kernel(trace)
            if kernel is not None:
                kernel(metrics)
                return metrics
            if batch:
                raise ValueError(
                    f"batch=True but policy {metrics.name!r} offers no "
                    f"batch kernel for this trace/configuration"
                )
        access_files = trace.access_files
        ptr_list, files, sizes, starts = trace.replay_columns
        request = policy.request
        begin_job = policy.begin_job
        # Fast path: per-job outer loop (job id and timestamp hoisted out
        # of the access loop), list columns (no numpy scalar boxing) and
        # local counters folded into the metrics once at the end.  Job
        # order and per-job file order are the canonical access order,
        # so the request stream is identical to the instrumented path.
        requests = hits = 0
        bytes_requested = bytes_hit = bytes_fetched = bypasses = 0
        for job in range(trace.n_jobs):
            lo = ptr_list[job]
            hi = ptr_list[job + 1]
            if lo == hi:
                continue
            now = starts[job]
            begin_job(access_files[lo:hi], now)
            for f in files[lo:hi]:
                size = sizes[f]
                outcome = request(f, size, now)
                requests += 1
                bytes_requested += size
                if outcome.hit:
                    hits += 1
                    bytes_hit += size
                else:
                    fetched = outcome.bytes_fetched
                    if fetched:
                        bytes_fetched += fetched
                    if outcome.bypassed:
                        bypasses += 1
        metrics.requests = requests
        metrics.hits = hits
        metrics.bytes_requested = bytes_requested
        metrics.bytes_hit = bytes_hit
        metrics.bytes_fetched = bytes_fetched
        metrics.bypasses = bypasses
        return metrics

    if batch:
        raise ValueError(
            "batch=True is incompatible with instrumentation; per-access "
            "hooks require the per-access replay path"
        )
    access_files = trace.access_files
    ptr_list, files, sizes, starts = trace.replay_columns
    request = policy.request
    begin_job = policy.begin_job
    inst = instrumentation
    total = len(files)
    progress_every = inst.progress_every
    inst.on_run_start(metrics.name, int(capacity), total)
    policy.evict_listener = inst.on_evict
    record = metrics.record
    access_jobs = trace.access_jobs
    current_job = -1
    now = 0.0
    try:
        for i in range(total):
            j = int(access_jobs[i])
            if j != current_job:
                now = starts[j]
                begin_job(access_files[ptr_list[j] : ptr_list[j + 1]], now)
                current_job = j
            f = files[i]
            size = sizes[f]
            inst.on_access(f, size, now)
            outcome = request(f, size, now)
            record(size, outcome)
            if outcome.hit:
                inst.on_hit(f, size)
            else:
                inst.on_miss(f, size, outcome.bytes_fetched, outcome.bypassed)
            done = i + 1
            if progress_every and done < total and done % progress_every == 0:
                inst.on_progress(done, total, metrics)
        inst.on_progress(total, total, metrics)  # exactly one done == total call
    finally:
        policy.evict_listener = None
    return metrics
