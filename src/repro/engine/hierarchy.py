"""Hierarchical trace replay: a miss at tier *k* falls through to *k+1*.

The ESnet XRootD deployments the related work characterizes (arXiv
2205.05598, 2307.11069) layer a site cache in front of a regional
in-network cache in front of the origin.  :func:`simulate_hierarchy`
replays that topology tier-sequentially: tier 0 serves the full demand
stream; the accesses it misses — including bypasses, whose bytes must
still be streamed from below — become tier 1's demand stream
(:meth:`~repro.traces.trace.Trace.subset_accesses` keeps job identity
and timestamps intact); whatever the innermost caching tier misses is
served by the origin, which holds everything.

Two properties anchor the model:

* **Flat collapse.**  The innermost caching tier has no deeper cache
  consuming its miss stream, so it replays through :func:`simulate`
  itself — a single-tier hierarchy *is* the flat replay, bit-identical
  for every registry policy (gated by the test suite).  Origin totals
  are pure arithmetic on that tier's metrics.
* **Demand-miss propagation.**  A deeper tier sees one request per
  missed *access*, not per fetched byte: group-granularity prefetch
  (a filecule load) and bypass streams inflate the tier's
  ``bytes_fetched`` — priced on the inter-tier link — but do not
  install state into, or count as demand at, the tier below.  Per-tier
  request streams therefore obey the conservation law
  ``tier[k+1].requests == tier[k].misses``.

Outer tiers replay through the policy's batch kernel where it offers
one (:meth:`~repro.cache.base.ReplacementPolicy.batch_kernel` with a
``hit_out`` mask), falling back to a mask-recording twin of
:func:`simulate`'s per-access fast path otherwise.

Layering: the tier topology model (:mod:`repro.hierarchy`) builds on
the registry and therefore ranks above the engine; it is resolved
lazily at call time, exactly like :func:`simulate`'s registry upcall.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.base import CacheMetrics
from repro.engine.replay import simulate
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class TierReplay:
    """One caching tier's outcome inside a hierarchy replay.

    ``metrics`` is exactly what a flat :func:`simulate` of this tier's
    demand stream would report; ``link_bytes`` (= ``bytes_fetched``) is
    what the tier pulled over its upstream link — demand misses plus
    group-prefetch overhead plus bypass streams.
    """

    tier: str
    policy: str
    capacity_bytes: int
    link_cost: float
    metrics: CacheMetrics

    @property
    def link_bytes(self) -> int:
        """Bytes pulled into this tier from the tier below it."""
        return self.metrics.bytes_fetched

    @property
    def byte_hit_rate(self) -> float:
        return 1.0 - self.metrics.byte_miss_rate


@dataclass(frozen=True, slots=True)
class HierarchyResult:
    """Outcome of one hierarchy replay.

    ``hierarchy`` is the canonical wire string
    (``parse_hierarchy(result.hierarchy)`` rebuilds the spec); ``tiers``
    are the caching tiers outermost-first; the ``origin_*`` totals
    describe the stream that fell through every cache.
    """

    hierarchy: str
    tiers: tuple[TierReplay, ...]
    origin_requests: int
    origin_demand_bytes: int
    origin_fetched_bytes: int

    @property
    def demand_requests(self) -> int:
        """File requests entering the hierarchy (tier-0 demand)."""
        return self.tiers[0].metrics.requests

    @property
    def demand_bytes(self) -> int:
        """Bytes requested of the hierarchy (tier-0 demand)."""
        return self.tiers[0].metrics.bytes_requested

    @property
    def hit_requests(self) -> int:
        """Requests served by *some* caching tier."""
        return sum(t.metrics.hits for t in self.tiers)

    @property
    def request_hit_rate(self) -> float:
        """Fraction of demand requests absorbed before the origin."""
        d = self.demand_requests
        return self.hit_requests / d if d else 0.0

    @property
    def origin_byte_hit_rate(self) -> float:
        """Fraction of demanded bytes served before reaching the origin.

        The hierarchy-scale Figure 10 metric: demand bytes that some
        caching tier absorbed, so the origin never saw them requested.
        Prefetch overhead is deliberately excluded — it is priced on
        the links (:attr:`origin_fetched_bytes`,
        :attr:`weighted_link_bytes`), not charged against hit rate.
        """
        d = self.demand_bytes
        return 1.0 - self.origin_demand_bytes / d if d else 0.0

    @property
    def origin_offload(self) -> float:
        """Alias of :attr:`origin_byte_hit_rate` (operator's view)."""
        return self.origin_byte_hit_rate

    @property
    def weighted_link_bytes(self) -> float:
        """Inter-tier traffic priced by each tier's link cost."""
        return float(
            sum(t.link_bytes * t.link_cost for t in self.tiers)
        )


def _replay_recorded(
    trace: Trace,
    policy,
    metrics: CacheMetrics,
    hit_out: np.ndarray,
    batch: bool | None,
) -> None:
    """Replay ``trace`` against ``policy``, marking hits in ``hit_out``.

    Counter-for-counter identical to :func:`simulate`'s uninstrumented
    path: the batch kernel runs whenever the policy offers one (it
    records the mask itself), and the fallback loop below is the same
    per-job fast path with one mask write added on the hit branch.
    """
    if batch is not False:
        kernel = policy.batch_kernel(trace, hit_out)
        if kernel is not None:
            kernel(metrics)
            return
        if batch:
            raise ValueError(
                f"batch=True but policy {metrics.name!r} offers no "
                f"batch kernel for this trace/configuration"
            )
    access_files = trace.access_files
    ptr_list, files, sizes, starts = trace.replay_columns
    request = policy.request
    begin_job = policy.begin_job
    requests = hits = 0
    bytes_requested = bytes_hit = bytes_fetched = bypasses = 0
    for job in range(trace.n_jobs):
        lo = ptr_list[job]
        hi = ptr_list[job + 1]
        if lo == hi:
            continue
        now = starts[job]
        begin_job(access_files[lo:hi], now)
        k = lo
        for f in files[lo:hi]:
            size = sizes[f]
            outcome = request(f, size, now)
            requests += 1
            bytes_requested += size
            if outcome.hit:
                hits += 1
                bytes_hit += size
                hit_out[k] = True
            else:
                fetched = outcome.bytes_fetched
                if fetched:
                    bytes_fetched += fetched
                if outcome.bypassed:
                    bypasses += 1
            k += 1
    metrics.requests = requests
    metrics.hits = hits
    metrics.bytes_requested = bytes_requested
    metrics.bytes_hit = bytes_hit
    metrics.bytes_fetched = bytes_fetched
    metrics.bypasses = bypasses


def simulate_hierarchy(
    trace: Trace,
    hierarchy,
    *,
    partition=None,
    batch: bool | None = None,
    total_bytes: int | None = None,
) -> HierarchyResult:
    """Replay ``trace`` through a tiered cache hierarchy.

    ``hierarchy`` is a :class:`~repro.hierarchy.HierarchySpec` or its
    wire string (``"site:lru@10%+regional:filecule-lru@5%+origin"``).
    Fractional tier capacities resolve against ``total_bytes`` (default:
    the trace's total accessed bytes), so the same spec is scale-
    invariant across workload tiers, like the Figure 10 sweep.

    ``partition``/``batch`` have :func:`simulate` semantics and apply
    per tier; policies that need the replayed trace receive the tier's
    *own* demand stream (clairvoyant bounds stay honest per tier).
    """
    # Lazy upcall: the spec model builds on the registry, which ranks
    # above the engine — see module docstring and docs/ARCHITECTURE.md.
    from repro.hierarchy.spec import parse_hierarchy

    spec = parse_hierarchy(hierarchy)
    if total_bytes is None:
        total_bytes = trace.total_bytes()
    caching = spec.caching_tiers
    innermost = len(caching) - 1
    cur = trace
    tiers: list[TierReplay] = []
    for idx, tier in enumerate(caching):
        capacity = tier.capacity_bytes(total_bytes)
        if idx == innermost:
            # No deeper cache consumes this tier's miss stream: replay
            # through simulate() itself, so a single-tier hierarchy is
            # the flat replay, bit for bit.
            metrics = simulate(
                cur,
                tier.policy,
                capacity,
                partition=partition,
                batch=batch,
            )
        else:
            from repro import registry

            policy = registry.build(
                tier.policy, capacity, trace=cur, partition=partition
            )
            metrics = CacheMetrics(
                name=str(tier.policy), capacity_bytes=int(capacity)
            )
            mask = np.zeros(cur.n_accesses, dtype=bool)
            _replay_recorded(cur, policy, metrics, mask, batch)
            cur = cur.subset_accesses(~mask)
        tiers.append(
            TierReplay(
                tier=tier.name,
                policy=str(tier.policy),
                capacity_bytes=int(capacity),
                link_cost=tier.link_cost,
                metrics=metrics,
            )
        )
    last = tiers[-1].metrics
    return HierarchyResult(
        hierarchy=str(spec),
        tiers=tuple(tiers),
        origin_requests=last.misses,
        origin_demand_bytes=last.bytes_requested - last.bytes_hit,
        origin_fetched_bytes=last.bytes_fetched,
    )
