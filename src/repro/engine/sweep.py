"""Policy × capacity sweep over one trace: the grid engine.

:func:`sweep` runs every (policy, capacity) combination of a grid
(Figure 10 is a two-policy, seven-capacity sweep) over the same trace
and collects the per-cell :class:`~repro.cache.base.CacheMetrics` into a
:class:`SweepResult`.  Policies are selected *declaratively*: the
``policies`` argument accepts registry spec strings (the preferred,
picklable form used by every experiment driver) as well as legacy
``name -> factory`` mappings.  With ``jobs=N`` the grid fans out over a
process pool (:mod:`repro.parallel`) with the trace shipped zero-copy
through shared memory, and the result is guaranteed identical to the
serial path.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.cache.base import CacheMetrics
from repro.engine.replay import PolicyFactory, simulate
from repro.obs.instrument import Instrumentation

#: The forms one policy selection may take in a ``policies`` argument.
PolicyLike = "PolicyFactory | str | BoundSpec"


@dataclass(frozen=True, slots=True)
class SweepResult:
    """Outcome grid of a policies × capacities sweep."""

    capacities: tuple[int, ...]
    metrics: dict[str, tuple[CacheMetrics, ...]]  # policy name -> per capacity

    def miss_rates(self, policy: str) -> list[float]:
        return [m.miss_rate for m in self.metrics[policy]]

    def byte_miss_rates(self, policy: str) -> list[float]:
        return [m.byte_miss_rate for m in self.metrics[policy]]

    def improvement_factor(
        self, baseline: str, contender: str
    ) -> list[float]:
        """Per-capacity ratio baseline miss rate / contender miss rate.

        The paper's headline is a 4–5× factor of file-LRU over
        filecule-LRU at large caches.  Capacities where only the
        contender has a zero miss rate report ``inf``; where *both*
        policies have zero miss rate (e.g. an empty or fully-cached
        cell) the factor is undefined and reports ``nan`` so downstream
        tables don't render a spurious ``inf×``.
        """
        out = []
        for b, c in zip(self.metrics[baseline], self.metrics[contender]):
            if c.miss_rate > 0:
                out.append(b.miss_rate / c.miss_rate)
            elif b.miss_rate > 0:
                out.append(float("inf"))
            else:
                out.append(float("nan"))
        return out


def resolve_policies(
    policies, trace=None, partition=None
) -> tuple[dict[str, PolicyFactory], dict[str, object] | None]:
    """Normalize a ``policies`` argument into named factories (+ specs).

    Accepted forms:

    * a mapping ``display name -> factory callable`` (legacy);
    * a mapping ``display name -> spec string or BoundSpec``;
    * a sequence of spec strings / BoundSpecs (display name = canonical
      spec string).

    Returns ``(factories, specs)`` where ``specs`` maps display names to
    canonical :class:`~repro.registry.BoundSpec` objects if and only if
    *every* policy was given as a spec — the condition under which the
    parallel runner can dispatch by name (plain picklable data) instead
    of relying on fork-inherited closures.
    """
    if isinstance(policies, str):
        raise TypeError(
            "policies must be a mapping or a sequence of specs, not a "
            "single string; wrap it in a list"
        )
    if isinstance(policies, Mapping):
        items = list(policies.items())
    elif isinstance(policies, Sequence):
        items = [(None, p) for p in policies]
    else:
        raise TypeError(
            f"unsupported policies argument of type {type(policies).__name__}"
        )
    if not items:
        raise ValueError("need at least one policy")

    factories: dict[str, PolicyFactory] = {}
    specs: dict[str, object] = {}
    all_specs = True
    for display, entry in items:
        if callable(entry):
            if display is None:
                raise TypeError(
                    "factory callables need a display name; pass a mapping"
                )
            all_specs = False
            factories[display] = entry
            continue
        # Spec-based selection resolves through the registry — a lazy
        # upcall, since the registry sits above the engine (it must see
        # every policy class); see docs/ARCHITECTURE.md.
        from repro import registry

        bound = registry.parse(entry)
        name = display if display is not None else str(bound)
        if name in factories:
            raise ValueError(f"duplicate policy name {name!r}")
        specs[name] = bound
        factories[name] = (
            lambda cap, _b=bound: registry.build(
                _b, cap, trace=trace, partition=partition
            )
        )
    if len(factories) != len(items):
        raise ValueError("duplicate policy names in the grid")
    return factories, (specs if all_specs else None)


def sweep(
    trace,
    policies,
    capacities: Sequence[int],
    instrumentation: Instrumentation | None = None,
    jobs: int = 1,
    *,
    partition=None,
    batch: bool | None = None,
) -> SweepResult:
    """Run every (policy, capacity) combination over the same trace.

    ``policies`` takes spec strings or factories — see
    :func:`resolve_policies`.  Spec-based grids that include
    filecule-granularity policies need ``partition=...``.

    A single ``instrumentation`` instance observes every run in turn —
    :meth:`~repro.obs.instrument.Instrumentation.on_run_start` announces
    each (policy, capacity) cell, so a progress reporter labels its
    output per run while a stats collector aggregates the whole grid.

    ``jobs > 1`` dispatches the grid to
    :class:`repro.parallel.ParallelSweepRunner`: each cell replays the
    identical immutable trace in a worker process (columns shared via
    :mod:`multiprocessing.shared_memory`, reconstructed once per worker)
    and the per-cell metrics are merged into a :class:`SweepResult`
    identical to the serial one.  ``jobs`` is a ceiling — the pool is
    clamped to the cell count and the machine's CPU count (the replay is
    CPU-bound; oversubscribing cores only slows it down).  Per-access
    hooks cannot cross process boundaries, so only ``None``,
    :class:`~repro.obs.instrument.SimStats`,
    :class:`~repro.obs.instrument.ProgressReporter` (progress checkpoints
    forwarded over a queue) and combinations of those are supported in
    parallel mode.

    ``batch`` is forwarded to :func:`~repro.engine.replay.simulate` on
    the serial path; parallel workers always use the default (kernels
    whenever the policy offers one) — results are identical either way.
    """
    caps = tuple(int(c) for c in capacities)
    if not caps:
        raise ValueError("need at least one capacity")
    if jobs is None:
        jobs = 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1:
        from repro.parallel.runner import parallel_sweep

        return parallel_sweep(
            trace,
            policies,
            caps,
            jobs=jobs,
            instrumentation=instrumentation,
            partition=partition,
        )
    factories, _ = resolve_policies(policies, trace, partition)
    metrics: dict[str, tuple[CacheMetrics, ...]] = {}
    for name, factory in factories.items():
        metrics[name] = tuple(
            simulate(
                trace,
                factory,
                cap,
                name=name,
                instrumentation=instrumentation,
                batch=batch,
            )
            for cap in caps
        )
    return SweepResult(capacities=caps, metrics=metrics)
