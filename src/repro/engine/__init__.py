"""The shared trace-replay engine.

One replay loop (:func:`simulate`) and one grid runner (:func:`sweep`)
serve every consumer in the repository — the serial simulator façade
(:mod:`repro.cache.simulator`), the process-parallel runner
(:mod:`repro.parallel`), the online service's benchmarks, and all
sweep-backed experiment drivers.  Policies are selected declaratively
through :mod:`repro.registry` spec strings wherever possible, so the
grid definition is plain picklable data.

Layering (see ``docs/ARCHITECTURE.md``): the engine sits directly above
the policy *interface* (:mod:`repro.cache.base`) and below the policy
catalog (:mod:`repro.registry`); it reaches the registry and the
parallel runner only through lazy, call-time imports.
"""

from repro.engine.hierarchy import (
    HierarchyResult,
    TierReplay,
    simulate_hierarchy,
)
from repro.engine.replay import PolicyFactory, simulate
from repro.engine.sweep import SweepResult, resolve_policies, sweep

__all__ = [
    "HierarchyResult",
    "PolicyFactory",
    "SweepResult",
    "TierReplay",
    "resolve_policies",
    "simulate",
    "simulate_hierarchy",
    "sweep",
]
