"""Budgeted proactive replication strategies.

Every strategy observes a *history* trace (the warmup window) and emits a
:class:`ReplicationPlan`: for each site, the set of files to pre-place
within a per-site byte budget.  The §6 comparison is between ranking and
shipping *files* versus whole *filecules*.

Strategies are registered as :mod:`repro.registry` placement specs
(``registry.register_placement``), so strategy selection is declarative
data exactly like cache-policy selection: experiment drivers hold tables
of spec strings (``"file-rank"``, ``"filecule-rank"``, ...) and
``registry.build_placement`` constructs the planner.  Canonical names
use the ``-rank`` suffix; the pre-registry class names survive as
aliases (``file-granularity`` → ``file-rank``).

Plan invariants (property-tested):

* ``site_bytes[s]`` never exceeds the site's budget;
* no file id appears twice in a site's push set;
* planning is deterministic — same history, same budgets, same plan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.filecule import FileculePartition
from repro.registry import register_placement
from repro.replication.placement import file_interest_matrix, interest_matrix
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class ReplicationPlan:
    """Chosen replicas: ``site_files[s]`` is the file-id array pushed to
    site ``s``; ``site_bytes[s]`` their total size."""

    strategy: str
    site_files: tuple[np.ndarray, ...]
    site_bytes: tuple[int, ...]

    @property
    def total_bytes(self) -> int:
        return int(sum(self.site_bytes))

    @property
    def total_replicas(self) -> int:
        return int(sum(len(f) for f in self.site_files))


class ReplicationStrategy(ABC):
    """Interface: plan replica placement from an observed history."""

    name: str = "strategy"

    @abstractmethod
    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        """Produce a plan given per-site byte ``budgets``."""

    @staticmethod
    def _check_budgets(history: Trace, budgets: np.ndarray) -> np.ndarray:
        budgets = np.asarray(budgets, dtype=np.int64)
        if len(budgets) != history.n_sites:
            raise ValueError(
                f"budgets cover {len(budgets)} sites, trace has "
                f"{history.n_sites}"
            )
        if np.any(budgets < 0):
            raise ValueError("budgets must be non-negative")
        return budgets


def _tie_break(file_ids: np.ndarray) -> np.ndarray:
    """Deterministic pseudo-random key per file (splitmix-style).

    Popularity ties are broken by a hash of the file id, not by id
    order: a filecule-unaware planner sees arbitrary logical file names,
    and id-adjacency in the synthetic catalog would otherwise smuggle in
    exactly the co-access structure the file-rank baseline lacks.
    """
    x = file_ids.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def _greedy_files(
    order: np.ndarray,
    sizes: np.ndarray,
    budget: int,
    *,
    used: int = 0,
    taken: set[int] | None = None,
) -> tuple[list[int], int]:
    """First-fit fill of ``budget`` with files in ``order``; skips
    ids already in ``taken`` and anything that would overflow."""
    chosen: list[int] = []
    for f in order:
        f = int(f)
        if taken is not None and f in taken:
            continue
        size = int(sizes[f])
        if used + size > budget:
            continue
        chosen.append(f)
        used += size
        if taken is not None:
            taken.add(f)
    return chosen, used


@register_placement(
    "file-rank",
    summary="per-site greedy fill with the locally most-requested files",
    aliases=("file-granularity",),
)
class FileGranularityReplication(ReplicationStrategy):
    """Per-site greedy fill with the locally most-requested files.

    The traditional single-file approach the paper argues against: it has
    the best information granularity but no notion of co-access, so it
    happily ships *parts* of co-used groups and strands jobs on the
    missing members.
    """

    name = "file-rank"

    # kept as a static hook: the tie-break is part of this baseline's
    # documented behavior and the tests exercise it directly
    _tie_break = staticmethod(_tie_break)

    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        budgets = self._check_budgets(history, budgets)
        counts = file_interest_matrix(history)
        sizes = history.file_sizes
        site_files: list[np.ndarray] = []
        site_bytes: list[int] = []
        for s in range(history.n_sites):
            wanted = np.flatnonzero(counts[s] > 0)
            order = wanted[
                np.lexsort((_tie_break(wanted), -counts[s][wanted]))
            ]
            chosen, used = _greedy_files(order, sizes, int(budgets[s]))
            site_files.append(np.asarray(chosen, dtype=np.int64))
            site_bytes.append(used)
        return ReplicationPlan(self.name, tuple(site_files), tuple(site_bytes))


def _rank_filecules(counts_row: np.ndarray) -> np.ndarray:
    """Filecule labels with interest, hottest first (stable order)."""
    wanted = np.flatnonzero(counts_row > 0)
    return wanted[np.argsort(counts_row[wanted], kind="stable")[::-1]]


@register_placement(
    "filecule-rank",
    summary="per-site greedy fill with whole locally-hot filecules",
    aliases=("filecule-granularity",),
)
class FileculeReplication(ReplicationStrategy):
    """Per-site greedy fill with the locally most-requested *filecules*.

    Ships only whole filecules, so every pushed byte arrives together
    with the bytes it is always used with — the paper's proposed
    granularity.  Filecules that do not fit in the remaining budget are
    skipped (never split).
    """

    name = "filecule-rank"

    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        budgets = self._check_budgets(history, budgets)
        counts = interest_matrix(history, partition)
        fc_sizes = partition.sizes_bytes
        site_files: list[np.ndarray] = []
        site_bytes: list[int] = []
        for s in range(history.n_sites):
            order = _rank_filecules(counts[s])
            chosen: list[np.ndarray] = []
            used = 0
            budget = int(budgets[s])
            for c in order:
                size = int(fc_sizes[c])
                if used + size > budget:
                    continue
                chosen.append(partition[int(c)].file_ids)
                used += size
            files = (
                np.concatenate(chosen) if chosen else np.zeros(0, dtype=np.int64)
            )
            site_files.append(files)
            site_bytes.append(used)
        return ReplicationPlan(self.name, tuple(site_files), tuple(site_bytes))


@register_placement(
    "global-rank",
    summary="locality-blind baseline: every site gets the global top files",
    aliases=("global-popularity",),
)
class GlobalPopularityReplication(ReplicationStrategy):
    """Locality-blind baseline: every site gets the globally hottest files.

    Isolates the value of per-site interest: the geographic partitioning
    of user interest (§3.2) makes global rankings a poor fit for remote
    sites.
    """

    name = "global-rank"

    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        budgets = self._check_budgets(history, budgets)
        popularity = history.file_popularity
        sizes = history.file_sizes
        wanted = np.flatnonzero(popularity > 0)
        order = wanted[np.argsort(popularity[wanted], kind="stable")[::-1]]
        site_files: list[np.ndarray] = []
        site_bytes: list[int] = []
        for s in range(history.n_sites):
            chosen, used = _greedy_files(order, sizes, int(budgets[s]))
            site_files.append(np.asarray(chosen, dtype=np.int64))
            site_bytes.append(used)
        return ReplicationPlan(self.name, tuple(site_files), tuple(site_bytes))


@register_placement(
    "local-filecule-rank",
    summary="filecule fill planned from per-site knowledge only (§6)",
    aliases=("filecule-local-knowledge",),
)
class LocalKnowledgeFileculeReplication(ReplicationStrategy):
    """Filecule replication planned from *per-site* knowledge only (§6).

    Each site identifies filecules from its own job log — necessarily
    coarser than the truth (see :mod:`repro.core.partial`) — and fills
    its budget with whole *local* filecules.  The paper predicts "higher
    replication costs in terms of used storage and transfer costs" under
    such inaccurate identification; comparing this planner against
    :class:`FileculeReplication` (global knowledge) under the same budget
    quantifies that cost.

    The ``partition`` argument (global knowledge) is deliberately
    ignored.
    """

    name = "local-filecule-rank"

    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        # local import: strategies otherwise stay identification-agnostic
        from repro.core.identify import find_filecules

        budgets = self._check_budgets(history, budgets)
        site_files: list[np.ndarray] = []
        site_bytes: list[int] = []
        for s in range(history.n_sites):
            sub = history.subset_jobs(history.job_sites == s)
            local = find_filecules(sub)
            order = np.argsort(local.requests, kind="stable")[::-1]
            chosen: list[np.ndarray] = []
            used = 0
            budget = int(budgets[s])
            for c in order:
                fc = local[int(c)]
                if fc.n_requests == 0:
                    break
                if used + fc.size_bytes > budget:
                    continue
                chosen.append(fc.file_ids)
                used += fc.size_bytes
            files = (
                np.concatenate(chosen) if chosen else np.zeros(0, dtype=np.int64)
            )
            site_files.append(files)
            site_bytes.append(used)
        return ReplicationPlan(self.name, tuple(site_files), tuple(site_bytes))


@register_placement(
    "hybrid-rank",
    summary="whole filecules first, residual budget filled with files",
)
class HybridReplication(ReplicationStrategy):
    """Whole filecules first, then single files into the leftover budget.

    Filecule-rank's weakness is quantization: a budget boundary can
    strand capacity no whole filecule fits into.  The hybrid keeps the
    co-access guarantee for everything it ships as a group, then spends
    the residual bytes on the site's hottest not-yet-placed *files*
    (file-rank order, tie-broken identically) — so it dominates
    filecule-rank on locality by construction while still never
    splitting a group it could afford whole.
    """

    name = "hybrid-rank"

    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        budgets = self._check_budgets(history, budgets)
        fc_counts = interest_matrix(history, partition)
        file_counts = file_interest_matrix(history)
        fc_sizes = partition.sizes_bytes
        sizes = history.file_sizes
        site_files: list[np.ndarray] = []
        site_bytes: list[int] = []
        for s in range(history.n_sites):
            budget = int(budgets[s])
            taken: set[int] = set()
            chosen: list[int] = []
            used = 0
            for c in _rank_filecules(fc_counts[s]):
                size = int(fc_sizes[c])
                if used + size > budget:
                    continue
                members = partition[int(c)].file_ids
                chosen.extend(int(f) for f in members)
                taken.update(int(f) for f in members)
                used += size
            wanted = np.flatnonzero(file_counts[s] > 0)
            order = wanted[
                np.lexsort((_tie_break(wanted), -file_counts[s][wanted]))
            ]
            extra, used = _greedy_files(
                order, sizes, budget, used=used, taken=taken
            )
            chosen.extend(extra)
            site_files.append(np.asarray(chosen, dtype=np.int64))
            site_bytes.append(used)
        return ReplicationPlan(self.name, tuple(site_files), tuple(site_bytes))


@register_placement(
    "tiered-filecule-rank",
    summary="filecule fill split across a cache hierarchy's tier shares",
    needs_hierarchy=True,
)
class TieredFileculeReplication(ReplicationStrategy):
    """Filecule placement shaped by a cache hierarchy's tier geometry.

    Splits each site's budget across the hierarchy's caching tiers in
    proportion to their capacities, then fills each share outermost
    first with the site's hottest still-unplaced filecules that would
    actually *fit* in that tier (a filecule larger than a tier can
    never be resident there, so staging it against that share is
    wasted intent).  Unspent share rolls inward.  With a single-tier
    hierarchy this collapses to plain filecule-rank with an extra
    fits-the-tier constraint.

    The first ``needs_hierarchy`` placement: it demands the
    :class:`repro.hierarchy.HierarchySpec` being replayed, wired
    through ``registry.build_placement(..., hierarchy=...)``.
    """

    name = "tiered-filecule-rank"

    def __init__(self, hierarchy) -> None:
        # Lazy upward import, the engine→registry pattern: the topology
        # model ranks above replication (see tools/check_layering.py).
        from repro.hierarchy.spec import parse_hierarchy

        self._hierarchy = parse_hierarchy(hierarchy)

    @property
    def hierarchy(self):
        """The parsed :class:`repro.hierarchy.HierarchySpec`."""
        return self._hierarchy

    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        budgets = self._check_budgets(history, budgets)
        tiers = self._hierarchy.caching_tiers
        total = history.total_bytes()
        tier_caps = [t.capacity_bytes(total) for t in tiers]
        cap_sum = sum(tier_caps)
        shares = (
            [c / cap_sum for c in tier_caps]
            if cap_sum > 0
            else [1.0 / len(tiers)] * len(tiers)
        )
        counts = interest_matrix(history, partition)
        fc_sizes = partition.sizes_bytes
        site_files: list[np.ndarray] = []
        site_bytes: list[int] = []
        for s in range(history.n_sites):
            budget = int(budgets[s])
            order = _rank_filecules(counts[s])
            placed: set[int] = set()  # filecule labels
            chosen: list[np.ndarray] = []
            used = 0
            carry = 0
            for share, tier_cap in zip(shares, tier_caps):
                sub_budget = int(share * budget) + carry
                sub_used = 0
                for c in order:
                    c = int(c)
                    if c in placed:
                        continue
                    size = int(fc_sizes[c])
                    if size > tier_cap:
                        continue  # could never be resident in this tier
                    if sub_used + size > sub_budget:
                        continue
                    placed.add(c)
                    chosen.append(partition[c].file_ids)
                    sub_used += size
                carry = sub_budget - sub_used
                used += sub_used
            files = (
                np.concatenate(chosen) if chosen else np.zeros(0, dtype=np.int64)
            )
            site_files.append(files)
            site_bytes.append(used)
        return ReplicationPlan(self.name, tuple(site_files), tuple(site_bytes))
