"""Budgeted proactive replication strategies.

Every strategy observes a *history* trace (the warmup window) and emits a
:class:`ReplicationPlan`: for each site, the set of files to pre-place
within a per-site byte budget.  The §6 comparison is between ranking and
shipping *files* versus whole *filecules*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.filecule import FileculePartition
from repro.replication.placement import file_interest_matrix, interest_matrix
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class ReplicationPlan:
    """Chosen replicas: ``site_files[s]`` is the file-id array pushed to
    site ``s``; ``site_bytes[s]`` their total size."""

    strategy: str
    site_files: tuple[np.ndarray, ...]
    site_bytes: tuple[int, ...]

    @property
    def total_bytes(self) -> int:
        return int(sum(self.site_bytes))

    @property
    def total_replicas(self) -> int:
        return int(sum(len(f) for f in self.site_files))


class ReplicationStrategy(ABC):
    """Interface: plan replica placement from an observed history."""

    name: str = "strategy"

    @abstractmethod
    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        """Produce a plan given per-site byte ``budgets``."""

    @staticmethod
    def _check_budgets(history: Trace, budgets: np.ndarray) -> np.ndarray:
        budgets = np.asarray(budgets, dtype=np.int64)
        if len(budgets) != history.n_sites:
            raise ValueError(
                f"budgets cover {len(budgets)} sites, trace has "
                f"{history.n_sites}"
            )
        if np.any(budgets < 0):
            raise ValueError("budgets must be non-negative")
        return budgets


class FileGranularityReplication(ReplicationStrategy):
    """Per-site greedy fill with the locally most-requested files.

    The traditional single-file approach the paper argues against: it has
    the best information granularity but no notion of co-access, so it
    happily ships *parts* of co-used groups and strands jobs on the
    missing members.

    Popularity ties are broken by a deterministic hash of the file id,
    not by id order: a filecule-unaware planner sees arbitrary logical
    file names, and id-adjacency in the synthetic catalog would otherwise
    smuggle in exactly the co-access structure this baseline lacks.
    """

    name = "file-granularity"

    @staticmethod
    def _tie_break(file_ids: np.ndarray) -> np.ndarray:
        """Deterministic pseudo-random key per file (splitmix-style)."""
        x = file_ids.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return x ^ (x >> np.uint64(31))

    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        budgets = self._check_budgets(history, budgets)
        counts = file_interest_matrix(history)
        sizes = history.file_sizes
        site_files: list[np.ndarray] = []
        site_bytes: list[int] = []
        for s in range(history.n_sites):
            wanted = np.flatnonzero(counts[s] > 0)
            order = wanted[
                np.lexsort((self._tie_break(wanted), -counts[s][wanted]))
            ]
            chosen: list[int] = []
            used = 0
            budget = int(budgets[s])
            for f in order:
                size = int(sizes[f])
                if used + size > budget:
                    continue
                chosen.append(int(f))
                used += size
            site_files.append(np.asarray(chosen, dtype=np.int64))
            site_bytes.append(used)
        return ReplicationPlan(self.name, tuple(site_files), tuple(site_bytes))


class FileculeReplication(ReplicationStrategy):
    """Per-site greedy fill with the locally most-requested *filecules*.

    Ships only whole filecules, so every pushed byte arrives together
    with the bytes it is always used with — the paper's proposed
    granularity.  Filecules that do not fit in the remaining budget are
    skipped (never split).
    """

    name = "filecule-granularity"

    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        budgets = self._check_budgets(history, budgets)
        counts = interest_matrix(history, partition)
        fc_sizes = partition.sizes_bytes
        site_files: list[np.ndarray] = []
        site_bytes: list[int] = []
        for s in range(history.n_sites):
            wanted = np.flatnonzero(counts[s] > 0)
            order = wanted[np.argsort(counts[s][wanted], kind="stable")[::-1]]
            chosen: list[np.ndarray] = []
            used = 0
            budget = int(budgets[s])
            for c in order:
                size = int(fc_sizes[c])
                if used + size > budget:
                    continue
                chosen.append(partition[int(c)].file_ids)
                used += size
            files = (
                np.concatenate(chosen) if chosen else np.zeros(0, dtype=np.int64)
            )
            site_files.append(files)
            site_bytes.append(used)
        return ReplicationPlan(self.name, tuple(site_files), tuple(site_bytes))


class GlobalPopularityReplication(ReplicationStrategy):
    """Locality-blind baseline: every site gets the globally hottest files.

    Isolates the value of per-site interest: the geographic partitioning
    of user interest (§3.2) makes global rankings a poor fit for remote
    sites.
    """

    name = "global-popularity"

    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        budgets = self._check_budgets(history, budgets)
        popularity = history.file_popularity
        sizes = history.file_sizes
        wanted = np.flatnonzero(popularity > 0)
        order = wanted[np.argsort(popularity[wanted], kind="stable")[::-1]]
        site_files: list[np.ndarray] = []
        site_bytes: list[int] = []
        for s in range(history.n_sites):
            chosen: list[int] = []
            used = 0
            budget = int(budgets[s])
            for f in order:
                size = int(sizes[f])
                if used + size > budget:
                    continue
                chosen.append(int(f))
                used += size
            site_files.append(np.asarray(chosen, dtype=np.int64))
            site_bytes.append(used)
        return ReplicationPlan(self.name, tuple(site_files), tuple(site_bytes))


class LocalKnowledgeFileculeReplication(ReplicationStrategy):
    """Filecule replication planned from *per-site* knowledge only (§6).

    Each site identifies filecules from its own job log — necessarily
    coarser than the truth (see :mod:`repro.core.partial`) — and fills
    its budget with whole *local* filecules.  The paper predicts "higher
    replication costs in terms of used storage and transfer costs" under
    such inaccurate identification; comparing this planner against
    :class:`FileculeReplication` (global knowledge) under the same budget
    quantifies that cost.

    The ``partition`` argument (global knowledge) is deliberately
    ignored.
    """

    name = "filecule-local-knowledge"

    def plan(
        self,
        history: Trace,
        partition: FileculePartition,
        budgets: np.ndarray,
    ) -> ReplicationPlan:
        # local import: strategies otherwise stay identification-agnostic
        from repro.core.identify import find_filecules

        budgets = self._check_budgets(history, budgets)
        site_files: list[np.ndarray] = []
        site_bytes: list[int] = []
        for s in range(history.n_sites):
            sub = history.subset_jobs(history.job_sites == s)
            local = find_filecules(sub)
            order = np.argsort(local.requests, kind="stable")[::-1]
            chosen: list[np.ndarray] = []
            used = 0
            budget = int(budgets[s])
            for c in order:
                fc = local[int(c)]
                if fc.n_requests == 0:
                    break
                if used + fc.size_bytes > budget:
                    continue
                chosen.append(fc.file_ids)
                used += fc.size_bytes
            files = (
                np.concatenate(chosen) if chosen else np.zeros(0, dtype=np.int64)
            )
            site_files.append(files)
            site_bytes.append(used)
        return ReplicationPlan(self.name, tuple(site_files), tuple(site_bytes))
