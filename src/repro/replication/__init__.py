"""Proactive data replication at file vs filecule granularity (paper §6).

The paper argues filecules are the right abstraction for answering "what
files to replicate?"  This package makes that concrete:

* :mod:`repro.replication.strategies` — budgeted replication planners:
  per-site popularity ranking at file granularity, filecule granularity,
  and a locality-blind global baseline;
* :mod:`repro.replication.placement` — the site × filecule interest
  matrix the planners rank with;
* :mod:`repro.replication.evaluate` — warmup/evaluation split of a trace,
  analytic scoring (local byte fraction, push cost, wasted pushed bytes)
  and an optional end-to-end replay on the :mod:`repro.sam` substrate.
"""

from repro.replication.strategies import (
    ReplicationPlan,
    ReplicationStrategy,
    FileGranularityReplication,
    FileculeReplication,
    GlobalPopularityReplication,
    LocalKnowledgeFileculeReplication,
)
from repro.replication.placement import interest_matrix, site_budgets
from repro.replication.evaluate import (
    ReplicationOutcome,
    evaluate_replication,
    compare_strategies,
)

__all__ = [
    "ReplicationPlan",
    "ReplicationStrategy",
    "FileGranularityReplication",
    "FileculeReplication",
    "GlobalPopularityReplication",
    "LocalKnowledgeFileculeReplication",
    "interest_matrix",
    "site_budgets",
    "ReplicationOutcome",
    "evaluate_replication",
    "compare_strategies",
]
