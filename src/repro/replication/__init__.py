"""Proactive data replication at file vs filecule granularity (paper §6).

The paper argues filecules are the right abstraction for answering "what
files to replicate?"  This package makes that concrete:

* :mod:`repro.replication.strategies` — budgeted replication planners,
  registered as :mod:`repro.registry` *placement specs* so strategy
  selection is declarative data: ``file-rank`` (single files),
  ``filecule-rank`` (whole filecules), ``global-rank`` (locality-blind),
  ``local-filecule-rank`` (per-site knowledge only), ``hybrid-rank``
  (whole filecules, then files into the residual budget), and
  ``tiered-filecule-rank`` (placement shaped by a
  :mod:`repro.hierarchy` tier geometry — the first ``needs_hierarchy``
  placement);
* :mod:`repro.replication.placement` — the site × filecule interest
  matrix the planners rank with;
* :mod:`repro.replication.evaluate` — warmup/evaluation split of a trace,
  analytic scoring (local byte fraction, push cost, wasted pushed bytes)
  reported through the shared :class:`~repro.obs.metrics.MetricsRegistry`
  vocabulary, and an optional end-to-end replay on the :mod:`repro.sam`
  substrate.

Build a planner from its spec string with
``registry.build_placement("filecule-rank")``; the evaluation entry
points accept the spec strings directly.
"""

from repro.replication.strategies import (
    ReplicationPlan,
    ReplicationStrategy,
    FileGranularityReplication,
    FileculeReplication,
    GlobalPopularityReplication,
    HybridReplication,
    LocalKnowledgeFileculeReplication,
    TieredFileculeReplication,
)
from repro.replication.placement import interest_matrix, site_budgets
from repro.replication.evaluate import (
    ReplicationOutcome,
    compare_strategies,
    evaluate_replication,
    fold_replication_metrics,
    resolve_strategy,
)

__all__ = [
    "ReplicationPlan",
    "ReplicationStrategy",
    "FileGranularityReplication",
    "FileculeReplication",
    "GlobalPopularityReplication",
    "HybridReplication",
    "LocalKnowledgeFileculeReplication",
    "TieredFileculeReplication",
    "interest_matrix",
    "site_budgets",
    "ReplicationOutcome",
    "compare_strategies",
    "evaluate_replication",
    "fold_replication_metrics",
    "resolve_strategy",
]
