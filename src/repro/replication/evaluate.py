"""Warmup/evaluate scoring of replication strategies.

The §6 experiment design: observe a prefix of the trace (warmup), plan
replica placement under a per-site byte budget, then score the plan on
the remaining jobs.  Metrics:

* ``local_byte_fraction`` — fraction of evaluated requested bytes already
  pinned at the requesting job's site (transfer bytes avoided);
* ``job_complete_fraction`` — fraction of evaluated jobs whose *entire*
  input set was pinned locally (no stall at all) — the metric where
  filecule granularity shines, because shipping partial groups does not
  complete any job;
* ``push_bytes`` — what the plan cost to ship;
* ``used_fraction`` — pushed bytes later requested locally at least once
  (1 − waste).

An optional end-to-end replay on the :mod:`repro.sam` substrate reports
stall times with the plan's catalog pre-registered.

Strategies are selected declaratively: every entry point accepts a
:mod:`repro.registry` placement spec string (``"filecule-rank"``), a
:class:`~repro.registry.BoundSpec`, or an already-built
:class:`~repro.replication.ReplicationStrategy` instance.  Outcomes
report through the shared :class:`~repro.obs.metrics.MetricsRegistry`
vocabulary (:func:`fold_replication_metrics`) — strategy-labeled
counters that merge/serialize/expose like every other producer — so
experiment drivers no longer carry ad-hoc result dicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro import registry
from repro.core.filecule import FileculePartition
from repro.core.identify import find_filecules
from repro.obs.metrics import MetricsRegistry
from repro.replication.placement import site_budgets
from repro.replication.strategies import ReplicationPlan, ReplicationStrategy
from repro.sam.catalog import ReplicaCatalog
from repro.sam.scheduler import GridReport, replay_trace
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class ReplicationOutcome:
    """Score card of one strategy on one warmup/evaluate split."""

    strategy: str
    push_bytes: int
    push_replicas: int
    eval_jobs: int
    eval_bytes: int
    local_bytes: int
    complete_jobs: int
    used_push_bytes: int
    grid_report: GridReport | None = None

    @property
    def local_byte_fraction(self) -> float:
        return self.local_bytes / self.eval_bytes if self.eval_bytes else 0.0

    @property
    def job_complete_fraction(self) -> float:
        return self.complete_jobs / self.eval_jobs if self.eval_jobs else 0.0

    @property
    def used_fraction(self) -> float:
        return (
            self.used_push_bytes / self.push_bytes if self.push_bytes else 0.0
        )


def resolve_strategy(
    strategy, *, hierarchy=None
) -> ReplicationStrategy:
    """Resolve a placement spec (or pass an instance through).

    The single seam between declarative strategy tables and live
    planners: spec strings and :class:`~repro.registry.BoundSpec`
    selections go through :func:`repro.registry.build_placement`
    (``hierarchy`` forwarded for ``needs_hierarchy`` placements);
    already-built strategies are returned unchanged.
    """
    if isinstance(strategy, ReplicationStrategy):
        return strategy
    return registry.build_placement(strategy, hierarchy=hierarchy)


def fold_replication_metrics(
    outcome: "ReplicationOutcome", metrics: MetricsRegistry
) -> MetricsRegistry:
    """Fold one outcome into ``metrics`` as strategy-labeled counters.

    Vocabulary (all monotone, labeled ``strategy=<name>``):
    ``repl_plans``, ``repl_push_bytes``, ``repl_push_replicas``,
    ``repl_eval_jobs``, ``repl_eval_bytes``, ``repl_local_bytes``,
    ``repl_complete_jobs``, ``repl_used_push_bytes``.  Ratios
    (locality, completion, waste) stay derivable after any number of
    merges because numerators and denominators travel separately.
    """
    name = outcome.strategy
    metrics.inc("repl_plans", strategy=name)
    metrics.inc("repl_push_bytes", outcome.push_bytes, strategy=name)
    metrics.inc("repl_push_replicas", outcome.push_replicas, strategy=name)
    metrics.inc("repl_eval_jobs", outcome.eval_jobs, strategy=name)
    metrics.inc("repl_eval_bytes", outcome.eval_bytes, strategy=name)
    metrics.inc("repl_local_bytes", outcome.local_bytes, strategy=name)
    metrics.inc("repl_complete_jobs", outcome.complete_jobs, strategy=name)
    metrics.inc(
        "repl_used_push_bytes", outcome.used_push_bytes, strategy=name
    )
    return metrics


def _split_by_time(trace: Trace, warmup_fraction: float) -> tuple[Trace, Trace]:
    if not 0 < warmup_fraction < 1:
        raise ValueError(
            f"warmup_fraction must be in (0, 1), got {warmup_fraction}"
        )
    t_lo, t_hi = trace.time_span()
    cut = t_lo + warmup_fraction * (t_hi - t_lo)
    warm = trace.subset_jobs(trace.job_starts < cut)
    rest = trace.subset_jobs(trace.job_starts >= cut)
    return warm, rest


def _score_plan(
    plan: ReplicationPlan, eval_trace: Trace
) -> tuple[int, int, int, int, int]:
    """Returns (eval_jobs, eval_bytes, local_bytes, complete_jobs,
    used_push_bytes)."""
    n_sites = eval_trace.n_sites
    pinned = np.zeros((n_sites, eval_trace.n_files), dtype=bool)
    for s in range(n_sites):
        pinned[s, plan.site_files[s]] = True

    sizes = eval_trace.file_sizes
    ptr = eval_trace.job_access_ptr
    sites = eval_trace.job_sites
    eval_jobs = 0
    eval_bytes = 0
    local_bytes = 0
    complete_jobs = 0
    used = np.zeros((n_sites, eval_trace.n_files), dtype=bool)
    for j in range(eval_trace.n_jobs):
        files = eval_trace.access_files[ptr[j] : ptr[j + 1]]
        if len(files) == 0:
            continue
        eval_jobs += 1
        s = int(sites[j])
        hit = pinned[s, files]
        fsz = sizes[files]
        eval_bytes += int(fsz.sum())
        local_bytes += int(fsz[hit].sum())
        if hit.all():
            complete_jobs += 1
        used[s, files[hit]] = True

    used_push_bytes = 0
    for s in range(n_sites):
        pushed = plan.site_files[s]
        if len(pushed):
            used_push_bytes += int(sizes[pushed][used[s, pushed]].sum())
    return eval_jobs, eval_bytes, local_bytes, complete_jobs, used_push_bytes


def evaluate_replication(
    trace: Trace,
    strategy,
    budget_bytes_per_site: int,
    warmup_fraction: float = 0.5,
    partition: FileculePartition | None = None,
    with_grid_replay: bool = False,
    metrics: MetricsRegistry | None = None,
) -> ReplicationOutcome:
    """Plan on the warmup window, score on the rest.

    ``strategy`` is a placement spec string, a
    :class:`~repro.registry.BoundSpec`, or a built strategy instance.
    The partition handed to the strategy is identified *from the warmup
    window only* — strategies never see the future.  When ``metrics``
    is given the outcome is folded in via
    :func:`fold_replication_metrics`.
    """
    strategy = resolve_strategy(strategy)
    warm, rest = _split_by_time(trace, warmup_fraction)
    if partition is None:
        partition = find_filecules(warm)
    budgets = site_budgets(trace, budget_bytes_per_site)
    plan = strategy.plan(warm, partition, budgets)
    eval_jobs, eval_bytes, local_bytes, complete, used = _score_plan(plan, rest)

    grid_report = None
    if with_grid_replay:
        catalog = ReplicaCatalog(trace.n_files, trace.n_sites)
        for s in range(trace.n_sites):
            catalog.bulk_register(plan.site_files[s], s)
        grid_report = replay_trace(rest, catalog=catalog)

    outcome = ReplicationOutcome(
        strategy=plan.strategy,
        push_bytes=plan.total_bytes,
        push_replicas=plan.total_replicas,
        eval_jobs=eval_jobs,
        eval_bytes=eval_bytes,
        local_bytes=local_bytes,
        complete_jobs=complete,
        used_push_bytes=used,
        grid_report=grid_report,
    )
    if metrics is not None:
        fold_replication_metrics(outcome, metrics)
    return outcome


def compare_strategies(
    trace: Trace,
    strategies: Sequence,
    budget_bytes_per_site: int,
    warmup_fraction: float = 0.5,
    metrics: MetricsRegistry | None = None,
) -> list[ReplicationOutcome]:
    """Score several strategies on the identical split and budget.

    ``strategies`` entries take the same forms as
    :func:`evaluate_replication`'s ``strategy`` — declarative spec
    tables (``("file-rank", "filecule-rank")``) are the expected shape.
    """
    warm, _ = _split_by_time(trace, warmup_fraction)
    partition = find_filecules(warm)
    return [
        evaluate_replication(
            trace,
            strategy,
            budget_bytes_per_site,
            warmup_fraction,
            partition=partition,
            metrics=metrics,
        )
        for strategy in strategies
    ]
