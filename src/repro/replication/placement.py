"""Interest statistics used by the replica placement strategies."""

from __future__ import annotations

import numpy as np

from repro.core.filecule import FileculePartition
from repro.traces.trace import Trace


def interest_matrix(
    trace: Trace, partition: FileculePartition
) -> np.ndarray:
    """(n_sites × n_filecules) matrix of request counts.

    Entry (s, c) is the number of jobs submitted from site ``s`` that
    accessed filecule ``c`` — the per-site popularity signal §6 proposes
    collecting at scheduler "concentration points".
    """
    out = np.zeros((trace.n_sites, len(partition)), dtype=np.int64)
    reps = partition.representative_files()
    for c, rep in enumerate(reps):
        jobs = trace.file_jobs(int(rep))
        if len(jobs) == 0:
            continue
        sites, counts = np.unique(trace.job_sites[jobs], return_counts=True)
        out[sites, c] = counts
    return out


def file_interest_matrix(trace: Trace) -> "np.ndarray":
    """(n_sites × n_files) sparse-ish request-count matrix.

    Dense for simplicity — the accessed-file count at laptop scale keeps
    this small; at paper scale use the filecule matrix instead (that is
    rather the point of the abstraction).
    """
    out = np.zeros((trace.n_sites, trace.n_files), dtype=np.int64)
    if trace.n_accesses == 0:
        return out
    sites = trace.job_sites[trace.access_jobs]
    np.add.at(out, (sites, trace.access_files), 1)
    return out


def site_budgets(
    trace: Trace, budget_bytes: int, weight_by_activity: bool = False
) -> np.ndarray:
    """Per-site replica storage budgets.

    Uniform by default; with ``weight_by_activity`` the budget is split
    proportionally to each site's traced job count (hub sites host more
    storage in practice).
    """
    if budget_bytes < 0:
        raise ValueError(f"negative budget: {budget_bytes}")
    if not weight_by_activity:
        return np.full(trace.n_sites, budget_bytes, dtype=np.int64)
    counts = np.bincount(
        trace.job_sites[trace.files_per_job > 0], minlength=trace.n_sites
    ).astype(np.float64)
    if counts.sum() == 0:
        return np.full(trace.n_sites, budget_bytes, dtype=np.int64)
    share = counts / counts.sum()
    return (share * budget_bytes * trace.n_sites).astype(np.int64)
