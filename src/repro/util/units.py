"""Byte-size units and human-readable formatting.

The paper reports sizes in MB/GB/TB (decimal binary-ish usage typical of
storage papers).  We standardize on *binary* multiples internally — a
"1 GB raw file" is ``1 * GB`` bytes — because only ratios matter for every
experiment; what matters is consistency, which these constants provide.
"""

from __future__ import annotations

import re

#: One kibibyte in bytes.
KB: int = 1024
#: One mebibyte in bytes.
MB: int = 1024 * KB
#: One gibibyte in bytes.
GB: int = 1024 * MB
#: One tebibyte in bytes.
TB: int = 1024 * GB
#: One pebibyte in bytes.
PB: int = 1024 * TB

_SUFFIXES = [("PB", PB), ("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)]

_PARSE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGTP]?B?)\s*$", re.IGNORECASE
)

_UNIT_FACTORS = {
    "": 1,
    "B": 1,
    "KB": KB,
    "K": KB,
    "MB": MB,
    "M": MB,
    "GB": GB,
    "G": GB,
    "TB": TB,
    "T": TB,
    "PB": PB,
    "P": PB,
}


def format_bytes(n: float, precision: int = 2) -> str:
    """Render a byte count with the largest suffix that keeps it >= 1.

    >>> format_bytes(3 * GB)
    '3.00 GB'
    >>> format_bytes(512)
    '512 B'
    """
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n!r}")
    for suffix, factor in _SUFFIXES:
        if n >= factor:
            return f"{n / factor:.{precision}f} {suffix}"
    return f"{int(n)} B"


def parse_size(text: str | int | float) -> int:
    """Parse a human size string like ``"1.5 TB"`` or ``"100GB"`` into bytes.

    Integers and floats pass through (rounded to int).  Raises
    :class:`ValueError` for unrecognized input.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text!r}")
        return int(text)
    match = _PARSE_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse size: {text!r}")
    unit = match.group("unit").upper()
    if unit not in _UNIT_FACTORS:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}")
    return int(float(match.group("num")) * _UNIT_FACTORS[unit])
