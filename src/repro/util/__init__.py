"""Shared utilities: byte units, seeded RNG plumbing, ASCII rendering.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` builds on them.  Nothing in here knows about traces, filecules
or caches.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    PB,
    format_bytes,
    parse_size,
)
from repro.util.rng import as_generator, spawn_children, stable_seed
from repro.util.timeutil import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    day_index,
    span_days,
)
from repro.util.tables import render_table
from repro.util.ascii_plot import ascii_histogram, ascii_series, ascii_intervals

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "format_bytes",
    "parse_size",
    "as_generator",
    "spawn_children",
    "stable_seed",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "day_index",
    "span_days",
    "render_table",
    "ascii_histogram",
    "ascii_series",
    "ascii_intervals",
]
