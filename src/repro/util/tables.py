"""Plain-text table rendering used by every experiment report.

The benchmark harness regenerates the paper's tables as monospace text; a
single shared renderer keeps formatting consistent and trivially testable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "N/A"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
            return f"{value:.4g}"
        return f"{value:.2f}"
    if value is None:
        return "N/A"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    align_right: bool = True,
) -> str:
    """Render a list of rows as an aligned monospace table.

    ``rows`` may contain any mix of str/int/float/None; floats are formatted
    compactly and ``None``/NaN render as ``N/A`` (matching the paper's
    tables).  The first column is always left-aligned (row labels).
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for j, cell in enumerate(cells):
            if j == 0 or not align_right:
                parts.append(cell.ljust(widths[j]))
            else:
                parts.append(cell.rjust(widths[j]))
        return "| " + " | ".join(parts) + " |"

    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
