"""Time helpers for trace timestamps.

Trace timestamps are plain ``float`` seconds since the start of the trace
window (the paper's window is Jan 2003 – May 2005).  Keeping them relative
avoids timezone/calendar concerns entirely; experiments only ever need
*durations* and *day bucketing*.
"""

from __future__ import annotations

import numpy as np

#: Number of seconds in one hour.
SECONDS_PER_HOUR: int = 3600
#: Number of seconds in one day.
SECONDS_PER_DAY: int = 24 * SECONDS_PER_HOUR


def day_index(timestamps: np.ndarray | float) -> np.ndarray | int:
    """Map timestamps (seconds) to integer day indices from trace start."""
    result = np.floor_divide(np.asarray(timestamps), SECONDS_PER_DAY).astype(np.int64)
    if np.ndim(timestamps) == 0:
        return int(result)
    return result


def span_days(start: float, end: float) -> float:
    """Length of ``[start, end]`` in (fractional) days."""
    if end < start:
        raise ValueError(f"interval end {end} precedes start {start}")
    return (end - start) / SECONDS_PER_DAY
