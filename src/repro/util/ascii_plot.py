"""Terminal-friendly plots for regenerating the paper's figures.

The benchmark harness must *print* each figure's data.  These renderers
draw quick ASCII approximations (histogram bars, XY series, Gantt-style
interval charts for Figures 11–12) so a human can eyeball the shape without
a plotting stack, while the underlying numeric series remain available for
assertions.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

_BAR = "#"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3g}"


def ascii_histogram(
    labels: Sequence[object],
    counts: Sequence[float],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Render labeled counts as horizontal bars scaled to ``width``."""
    if len(labels) != len(counts):
        raise ValueError(
            f"labels ({len(labels)}) and counts ({len(counts)}) differ in length"
        )
    lines = [title] if title else []
    if not counts:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(max(counts), 1e-12)
    label_w = max(len(str(lab)) for lab in labels)
    count_w = max(len(_fmt(c)) for c in counts)
    for lab, count in zip(labels, counts):
        bar = _BAR * max(0, round(width * count / peak))
        if count > 0 and not bar:
            bar = _BAR  # never render a nonzero bucket as empty
        lines.append(f"{str(lab):>{label_w}} | {_fmt(count):>{count_w}} | {bar}")
    return "\n".join(lines)


def ascii_series(
    x: Sequence[float],
    ys: dict[str, Sequence[float]],
    height: int = 16,
    width: int = 72,
    title: str | None = None,
    logy: bool = False,
) -> str:
    """Scatter one or more named series on a shared character grid.

    Each series gets a distinct glyph; a legend line maps glyphs to names.
    ``logy`` plots log10(y) for positive values (zeros are clamped to the
    smallest positive value present), which matches how the paper displays
    heavy-tailed distributions.
    """
    if not ys:
        raise ValueError("need at least one series")
    glyphs = "*o+x@%&$"
    xs = list(x)
    all_y: list[float] = []
    for name, series in ys.items():
        if len(series) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(series)} points, x has {len(xs)}"
            )
        all_y.extend(float(v) for v in series)
    if not xs:
        return (title or "") + "\n(empty)"

    def transform(v: float, floor: float) -> float:
        if not logy:
            return v
        return math.log10(max(v, floor))

    positive = [v for v in all_y if v > 0]
    floor = min(positive) if positive else 1.0
    ty = [transform(v, floor) for v in all_y]
    y_lo, y_hi = min(ty), max(ty)
    x_lo, x_hi = min(xs), max(xs)
    y_span = (y_hi - y_lo) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, series) in enumerate(ys.items()):
        glyph = glyphs[idx % len(glyphs)]
        for xi, yi in zip(xs, series):
            col = round((width - 1) * (xi - x_lo) / x_span)
            row = round((height - 1) * (transform(float(yi), floor) - y_lo) / y_span)
            grid[height - 1 - row][col] = glyph

    lines = [title] if title else []
    y_label_hi = f"{(10 ** y_hi if logy else y_hi):.3g}"
    y_label_lo = f"{(10 ** y_lo if logy else y_lo):.3g}"
    lines.append(f"y: {y_label_lo} .. {y_label_hi}" + ("  (log scale)" if logy else ""))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_lo:.6g} .. {x_hi:.6g}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(ys)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ascii_intervals(
    rows: Sequence[tuple[str, float, float]],
    t_lo: float | None = None,
    t_hi: float | None = None,
    width: int = 72,
    title: str | None = None,
) -> str:
    """Gantt-style chart: one labeled ``=====`` bar per (label, start, end).

    This is the rendering used for Figures 11 and 12 (time intervals during
    which a filecule is accessed per site / per user).
    """
    lines = [title] if title else []
    if not rows:
        lines.append("(no intervals)")
        return "\n".join(lines)
    starts = [r[1] for r in rows]
    ends = [r[2] for r in rows]
    lo = min(starts) if t_lo is None else t_lo
    hi = max(ends) if t_hi is None else t_hi
    span = (hi - lo) or 1.0
    label_w = max(len(r[0]) for r in rows)
    for label, start, end in rows:
        if end < start:
            raise ValueError(f"interval for {label!r} ends before it starts")
        a = round((width - 1) * (start - lo) / span)
        b = round((width - 1) * (end - lo) / span)
        bar = [" "] * width
        for i in range(a, b + 1):
            bar[i] = "="
        bar[a] = "["
        bar[min(b, width - 1)] = "]"
        lines.append(f"{label:>{label_w}} |{''.join(bar)}|")
    lines.append(f"{'':>{label_w}}  t: {lo:.6g} .. {hi:.6g}")
    return "\n".join(lines)
