"""Deterministic random-number plumbing.

Every stochastic component of :mod:`repro` accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy)
and normalizes it through :func:`as_generator`.  Large generators spawn
independent child streams with :func:`spawn_children` so that, e.g., the
file-population builder and the job-stream generator do not perturb each
other when one of them changes how many draws it makes.
"""

from __future__ import annotations

import hashlib

import numpy as np

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalize ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    anything else builds a fresh PCG64 stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_children(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Independence is guaranteed by :class:`numpy.random.SeedSequence`
    spawning, so adding draws to one child never shifts another child's
    stream — the property that keeps experiments reproducible when one
    sub-model is modified.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} child generators")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if seq is None:  # pragma: no cover - legacy bit generators
            seq = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def stable_seed(*parts: object) -> int:
    """Derive a stable 63-bit seed from arbitrary hashable parts.

    Unlike :func:`hash`, the result does not vary across interpreter runs
    (``PYTHONHASHSEED``); it is a truncated BLAKE2 digest of the repr of the
    parts.  Used to give named sub-experiments ("fig10/file-lru/5TB")
    deterministic yet distinct streams.
    """
    digest = hashlib.blake2b(
        "\x1f".join(repr(p) for p in parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1
