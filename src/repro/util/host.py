"""Host identification for benchmark artifacts.

Every ``BENCH_*.json`` this repository commits embeds :func:`host_info`
so a reader can tell *what machine* produced the numbers — a 0.63x
"parallel speedup" means something entirely different on one CPU than on
sixteen, and the committed artifacts have historically come from
single-CPU CI-class hosts.
"""

from __future__ import annotations

import os
import platform


def host_info() -> dict:
    """The fields benchmark artifacts record about the machine."""
    return {
        "cpus": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
