"""Process-parallel (policy, capacity) sweep engine.

The Figure 10 grid — and every experiment built on
:func:`repro.engine.sweep` — is embarrassingly parallel: each cell
replays the identical immutable trace against a fresh policy instance.
:class:`ParallelSweepRunner` fans the grid out over a
:class:`multiprocessing.Pool`:

* the trace's columns travel **zero-copy** through one shared-memory
  segment (:mod:`repro.parallel.shm`), reconstructed once per worker in
  the pool initializer — never per cell;
* policies given as :mod:`repro.registry` spec strings are dispatched
  **by name**: workers receive the plain ``{display name: spec string}``
  table (plus the pickled filecule partition, if any) and build each
  policy locally against the shared-memory trace.  Spec dispatch is
  start-method agnostic — it works under ``spawn`` as well as ``fork``;
* legacy factory callables (arbitrary closures over partitions/traces)
  are still supported, but only under the ``fork`` start method, where
  the workers inherit them — closures are deliberately never pickled;
* each cell returns its :class:`~repro.cache.base.CacheMetrics` plus a
  per-cell :class:`~repro.obs.metrics.MetricsRegistry`, which the parent
  folds together with the existing
  :meth:`~repro.obs.metrics.MetricsRegistry.merge`;
* with progress enabled (``REPRO_PROGRESS=1`` through the drivers, or a
  :class:`~repro.obs.instrument.ProgressReporter` passed to ``sweep``),
  workers forward periodic checkpoints over a queue and the parent
  prints throttled live hit-rate/ETA lines exactly like the serial path;
* a failing cell raises :class:`SweepCellError` naming the (policy,
  capacity) cell — including the case of an unknown spec name reaching
  a worker, which surfaces the registry's "unknown policy" message —
  and the shared-memory segment is unlinked in a ``finally`` — no leaks
  even on failure.

Results are **identical** to the serial path by construction: the same
:func:`~repro.engine.simulate` code runs over byte-identical columns,
and the property tests assert equality cell by cell.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from typing import IO

from repro.cache.base import CacheMetrics
from repro.engine.replay import PolicyFactory, simulate
from repro.engine.sweep import SweepResult, resolve_policies
from repro.obs.instrument import (
    Instrumentation,
    MultiInstrumentation,
    ProgressReporter,
    SimStats,
)
from repro.obs.metrics import MetricsRegistry
from repro.parallel.plan import plan_sweep
from repro.parallel.shm import SharedTraceBuffers, SharedTraceSpec, attach_trace
from repro.traces.trace import Trace
from repro.util.units import format_bytes

#: Default accesses between forwarded progress checkpoints (matches
#: :class:`~repro.obs.instrument.ProgressReporter`).
DEFAULT_PROGRESS_EVERY = 65536


class SweepCellError(RuntimeError):
    """A worker failed while simulating one (policy, capacity) cell."""

    def __init__(self, policy: str, capacity: int, cause: BaseException):
        self.policy = policy
        self.capacity = capacity
        super().__init__(
            f"sweep cell failed: policy {policy!r} at capacity {capacity} "
            f"({format_bytes(capacity, 1)}): {cause!r}"
        )


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: Per-worker state installed by the pool initializer.  Spec-mode grids
#: ship a plain ``{name: spec string}`` table (picklable, so it survives
#: any start method); legacy factory grids rely on fork inheritance.
_WORKER: dict = {}


def _init_worker(
    spec: SharedTraceSpec,
    policy_defs: tuple,
    progress: tuple | None,
    collect_stats: bool,
) -> None:
    trace, shm = attach_trace(spec)
    _WORKER["trace"] = trace
    _WORKER["shm"] = shm  # keep the mapping alive for the process lifetime
    mode = policy_defs[0]
    _WORKER["mode"] = mode
    if mode == "specs":
        _WORKER["specs"] = policy_defs[1]
        _WORKER["partition"] = policy_defs[2]
    else:
        _WORKER["factories"] = policy_defs[1]
    _WORKER["progress"] = progress
    _WORKER["collect_stats"] = collect_stats


def _policy_factory(name: str) -> PolicyFactory:
    """Resolve one cell's policy factory inside a worker.

    Spec mode builds through :func:`repro.registry.build` against the
    worker's shared-memory trace; an unknown display name (or a spec
    string naming a policy this registry doesn't know) raises the
    registry's clear ``unknown policy`` error, which the parent wraps in
    :class:`SweepCellError` naming the cell.
    """
    if _WORKER.get("mode") == "specs":
        specs: dict[str, str] = _WORKER["specs"]
        try:
            spec_str = specs[name]
        except KeyError:
            from repro.registry import UnknownPolicyError

            raise UnknownPolicyError(
                f"unknown policy {name!r} reached a sweep worker; specs "
                f"shipped to this worker: {sorted(specs)}"
            ) from None
        from repro import registry

        trace = _WORKER["trace"]
        partition = _WORKER["partition"]
        return lambda cap: registry.build(
            spec_str, cap, trace=trace, partition=partition
        )
    return _WORKER["factories"][name]


class _QueueProgress(Instrumentation):
    """Worker-side hook forwarding progress checkpoints to the parent."""

    def __init__(self, queue, progress_every: int) -> None:
        self.queue = queue
        self.progress_every = progress_every
        self._name = ""
        self._capacity = 0
        self._evicted = 0

    def on_run_start(self, name: str, capacity: int, total_accesses: int) -> None:
        self._name = name
        self._capacity = capacity
        self._evicted = 0
        self.queue.put(("run", name, capacity, total_accesses))

    def on_evict(self, bytes_evicted: int) -> None:
        self._evicted += bytes_evicted

    def on_progress(self, done: int, total: int, metrics) -> None:
        self.queue.put(
            (
                "tick",
                self._name,
                self._capacity,
                done,
                total,
                metrics.hit_rate,
                self._evicted,
            )
        )


def _run_cells(chunk: tuple) -> list:
    """Run a batch of (name, index, capacity) cells in this worker.

    Cells are chunked by :func:`repro.parallel.plan.plan_sweep` so small
    cells share one pickle round trip instead of paying one each.  A
    failing cell is captured as an ``("err", name, index, exc)`` entry —
    the chunk's remaining cells still run, and the parent raises
    :class:`SweepCellError` for the first error in cell order.
    """
    out = []
    for name, index, capacity in chunk:
        try:
            out.append(("ok", *_run_cell(name, index, capacity)))
        except Exception as exc:
            out.append(("err", name, index, exc))
    return out


def _run_cell(name: str, index: int, capacity: int):
    trace: Trace = _WORKER["trace"]
    factory = _policy_factory(name)
    hooks: list[Instrumentation] = []
    stats = SimStats() if _WORKER["collect_stats"] else None
    if stats is not None:
        hooks.append(stats)
    progress = _WORKER["progress"]
    if progress is not None:
        hooks.append(_QueueProgress(*progress))
    instrumentation: Instrumentation | None
    if not hooks:
        instrumentation = None
    elif len(hooks) == 1:
        instrumentation = hooks[0]
    else:
        instrumentation = MultiInstrumentation(*hooks)
    t0 = time.perf_counter()
    metrics = simulate(
        trace, factory, capacity, name=name, instrumentation=instrumentation
    )
    wall = time.perf_counter() - t0
    registry = MetricsRegistry()
    registry.inc("sweep_cells", policy=name)
    registry.inc("sweep_accesses", metrics.requests, policy=name)
    registry.inc("sweep_hits", metrics.hits, policy=name)
    registry.inc("sweep_misses", metrics.misses, policy=name)
    registry.inc("sweep_bytes_fetched", metrics.bytes_fetched, policy=name)
    registry.observe("sweep_cell", wall, policy=name)
    return name, index, metrics, stats, registry


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


class _ProgressPrinter:
    """Parent-side consumer of forwarded checkpoints.

    Cells from several workers interleave, so lines are labeled per cell
    (``policy@capacity``) and rate/ETA are computed from the parent's
    clock per cell; output is throttled globally like the serial
    :class:`~repro.obs.instrument.ProgressReporter`.
    """

    def __init__(
        self,
        label: str,
        stream: IO[str] | None,
        min_interval_s: float = 1.0,
    ) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._started: dict[tuple[str, int], float] = {}
        self._t_last = float("-inf")

    def handle(self, message: tuple) -> None:
        kind = message[0]
        if kind == "run":
            _, name, capacity, _total = message
            self._started[(name, capacity)] = time.perf_counter()
            return
        _, name, capacity, done, total, hit_rate, evicted = message
        now = time.perf_counter()
        if done < total and now - self._t_last < self.min_interval_s:
            return
        self._t_last = now
        t0 = self._started.get((name, capacity), now)
        elapsed = now - t0
        rate = done / elapsed if elapsed > 0 else 0.0
        eta = (total - done) / rate if rate > 0 and done < total else 0.0
        self.stream.write(
            f"[{self.label} {name}@{format_bytes(capacity, 1)}] "
            f"{done / total:6.1%} {done}/{total} "
            f"hit={hit_rate:.3f} "
            f"evicted={format_bytes(evicted, 1)} "
            f"{rate:,.0f} acc/s eta={eta:.0f}s\n"
        )
        self.stream.flush()


class ParallelSweepRunner:
    """Fan a (policy, capacity) grid out over a process pool.

    Parameters
    ----------
    jobs:
        Worker process *ceiling*.  The pool never exceeds the cell count
        and — unless ``oversubscribe`` — never exceeds the machine's CPU
        count either: the replay is CPU-bound, so extra workers on the
        same core only add context-switch and cache-thrash cost (measured
        ~2.4× slower at 4 workers on 1 core; see ``BENCH_sweep.json``).
        The worker count actually used is exposed as
        :attr:`effective_jobs` after :meth:`run`.
    start_method:
        Multiprocessing start method.  ``None`` (default) picks ``fork``
        where available, falling back to ``spawn`` for spec-based grids.
        Grids containing factory *callables* require ``fork`` (closures
        cross the process boundary by inheritance, never by pickling);
        spec-string grids work under any method because workers rebuild
        policies by name through :mod:`repro.registry`.
    progress, progress_stream, progress_every, label:
        Enable live progress forwarding from workers (off by default;
        ``sweep`` turns it on when handed a ``ProgressReporter``).
    collect_stats:
        Run every cell under a :class:`~repro.obs.instrument.SimStats`
        collector and merge the workers' collectors into :attr:`stats`.
        This uses the (slower) instrumented simulation path, exactly as
        it would serially.
    oversubscribe:
        Allow more workers than CPUs (up to ``jobs``).  A diagnostic /
        benchmarking knob — the default clamp is the right call for real
        runs.

    After :meth:`run`, :attr:`registry` holds the merged per-cell worker
    registries (cell counters plus a ``sweep_cell`` wall-time histogram,
    combined with :meth:`~repro.obs.metrics.MetricsRegistry.merge`) and
    :attr:`stats` the merged :class:`~repro.obs.instrument.SimStats`
    (``None`` unless ``collect_stats``).
    """

    def __init__(
        self,
        jobs: int,
        *,
        start_method: str | None = None,
        progress: bool = False,
        progress_stream: IO[str] | None = None,
        progress_every: int = DEFAULT_PROGRESS_EVERY,
        label: str = "psweep",
        collect_stats: bool = False,
        oversubscribe: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.start_method = start_method
        self.progress = progress
        self.progress_stream = progress_stream
        self.progress_every = progress_every
        self.label = label
        self.collect_stats = collect_stats
        self.oversubscribe = oversubscribe
        self.registry = MetricsRegistry()
        self.stats: SimStats | None = None
        #: Worker count the last :meth:`run` actually used.
        self.effective_jobs = 0

    def _pick_context(self, spec_mode: bool):
        available = multiprocessing.get_all_start_methods()
        method = self.start_method
        if method is None:
            if "fork" in available:
                method = "fork"
            elif spec_mode:  # pragma: no cover - non-POSIX platforms
                method = "spawn"
            else:  # pragma: no cover - non-POSIX platforms
                raise RuntimeError(
                    "parallel sweeps over factory callables need the 'fork' "
                    "start method; pass registry spec strings (spawn-safe) "
                    "or run sweep(jobs=1) on this platform"
                )
        elif method not in available:
            raise RuntimeError(
                f"start method {method!r} is not available on this "
                f"platform (have: {available})"
            )
        if method != "fork" and not spec_mode:
            raise ValueError(
                "policy factory callables cannot cross a "
                f"{method!r}-context process boundary; pass registry spec "
                "strings (see repro.registry) for spawn-safe dispatch"
            )
        return multiprocessing.get_context(method)

    def run(
        self,
        trace: Trace,
        policies,
        capacities,
        *,
        partition=None,
        buffers: SharedTraceBuffers | None = None,
    ) -> SweepResult:
        """Run the grid; identical results to serial ``sweep``.

        ``policies`` takes the same forms as serial
        :func:`~repro.engine.sweep` — registry spec strings (preferred:
        dispatched to workers as plain picklable names) or ``name ->
        factory`` mappings (fork-only).  Spec grids that include
        filecule-granularity policies need ``partition=...``; it is
        pickled once into each worker.

        ``buffers`` optionally reuses an existing
        :class:`~repro.parallel.shm.SharedTraceBuffers` built from this
        same trace — repeated runs (benchmark repeats, back-to-back
        grids) then skip the copy-into-shared-memory setup cost.  A
        caller-provided segment is left open: its owner closes and
        unlinks it.
        """
        factories, specs = resolve_policies(policies, trace, partition)
        caps = tuple(int(c) for c in capacities)
        if not caps:
            raise ValueError("need at least one capacity")
        ctx = self._pick_context(spec_mode=specs is not None)
        cells = [
            (name, index, cap)
            for name in factories
            for index, cap in enumerate(caps)
        ]
        plan = plan_sweep(
            len(cells),
            trace.n_accesses,
            self.jobs,
            oversubscribe=self.oversubscribe,
        )
        chunks = [
            tuple(cells[k : k + plan.cells_per_chunk])
            for k in range(0, len(cells), plan.cells_per_chunk)
        ]
        processes = max(1, min(plan.workers, len(chunks)))
        self.effective_jobs = processes
        queue = ctx.Queue() if self.progress else None
        printer_thread = None
        if queue is not None:
            printer = _ProgressPrinter(self.label, self.progress_stream)

            def drain() -> None:
                while True:
                    message = queue.get()
                    if message is None:
                        return
                    printer.handle(message)

            printer_thread = threading.Thread(
                target=drain, name="psweep-progress", daemon=True
            )
            printer_thread.start()

        if specs is not None:
            policy_defs = (
                "specs",
                {name: str(bound) for name, bound in specs.items()},
                partition,
            )
        else:
            policy_defs = ("factories", dict(factories))
        grid: dict[str, list[CacheMetrics | None]] = {
            name: [None] * len(caps) for name in factories
        }
        merged_stats = SimStats() if self.collect_stats else None
        owns_buffers = buffers is None
        if owns_buffers:
            buffers = SharedTraceBuffers(trace)
        try:
            progress_cfg = (
                (queue, self.progress_every) if queue is not None else None
            )
            with ctx.Pool(
                processes,
                initializer=_init_worker,
                initargs=(
                    buffers.spec,
                    policy_defs,
                    progress_cfg,
                    self.collect_stats,
                ),
            ) as pool:
                pending = [
                    (chunk, pool.apply_async(_run_cells, (chunk,)))
                    for chunk in chunks
                ]
                for chunk, handle in pending:
                    try:
                        results = handle.get()
                    except Exception as exc:
                        # The whole chunk failed to round-trip (e.g. an
                        # unpicklable result); blame its first cell.
                        name, index, _cap = chunk[0]
                        raise SweepCellError(name, caps[index], exc) from exc
                    for entry in results:
                        if entry[0] == "err":
                            _, name, index, exc = entry
                            raise SweepCellError(name, caps[index], exc) from exc
                        _, name, index, metrics, stats, registry = entry
                        grid[name][index] = metrics
                        self.registry.merge(registry)
                        if merged_stats is not None and stats is not None:
                            merged_stats.merge(stats)
        finally:
            if queue is not None:
                queue.put(None)
                printer_thread.join(timeout=5.0)
                queue.close()
            if owns_buffers:
                buffers.close()
                buffers.unlink()
        self.stats = merged_stats
        return SweepResult(
            capacities=caps,
            metrics={name: tuple(grid[name]) for name in factories},
        )


def parallel_sweep(
    trace: Trace,
    policies,
    capacities,
    *,
    jobs: int,
    instrumentation: Instrumentation | None = None,
    partition=None,
    start_method: str | None = None,
    auto_serial: bool = True,
) -> SweepResult:
    """``sweep(jobs=N)`` backend: map the instrumentation contract onto a
    :class:`ParallelSweepRunner`.

    Per-access hooks cannot cross process boundaries, so only the two
    shipped observation types (and combinations of them) are supported:
    a :class:`~repro.obs.instrument.ProgressReporter` has its checkpoint
    stream forwarded from the workers over a queue, and a
    :class:`~repro.obs.instrument.SimStats` receives the merged worker
    collectors after the run.  Anything else raises ``ValueError`` —
    run serially for custom per-access instrumentation.

    ``jobs`` is a ceiling, never a demand to go slower: with
    ``auto_serial`` (the default), grids whose
    :func:`~repro.parallel.plan.plan_sweep` says a pool cannot win —
    too few total accesses to amortize the fork/shared-memory setup, or
    only one usable worker — run on the ordinary serial loop instead,
    with identical results, the same instrumentation objects observing,
    and per-cell failures still wrapped in :class:`SweepCellError`.
    Set ``REPRO_PARALLEL_FORCE=1`` (or ``auto_serial=False``) to force
    the pool for crossover measurements.
    """
    hooks: tuple[Instrumentation, ...]
    if instrumentation is None:
        hooks = ()
    elif isinstance(instrumentation, MultiInstrumentation):
        hooks = instrumentation.children
    else:
        hooks = (instrumentation,)
    reporter: ProgressReporter | None = None
    sinks: list[SimStats] = []
    for hook in hooks:
        if isinstance(hook, ProgressReporter):
            reporter = hook
        elif isinstance(hook, SimStats):
            sinks.append(hook)
        else:
            raise ValueError(
                "parallel sweeps forward progress checkpoints and SimStats "
                "only; got unsupported instrumentation "
                f"{type(hook).__name__} — use jobs=1 for custom per-access "
                "hooks"
            )
    caps = tuple(int(c) for c in capacities)
    if not caps:
        raise ValueError("need at least one capacity")
    if auto_serial:
        factories, _ = resolve_policies(policies, trace, partition)
        plan = plan_sweep(len(factories) * len(caps), trace.n_accesses, jobs)
        if not plan.use_parallel:
            metrics: dict[str, tuple[CacheMetrics, ...]] = {}
            for name, factory in factories.items():
                row = []
                for cap in caps:
                    try:
                        row.append(
                            simulate(
                                trace,
                                factory,
                                cap,
                                name=name,
                                instrumentation=instrumentation,
                            )
                        )
                    except Exception as exc:
                        raise SweepCellError(name, cap, exc) from exc
                metrics[name] = tuple(row)
            return SweepResult(capacities=caps, metrics=metrics)
    runner = ParallelSweepRunner(
        jobs=jobs,
        start_method=start_method,
        progress=reporter is not None,
        progress_stream=reporter.stream if reporter is not None else None,
        progress_every=(
            reporter.progress_every
            if reporter is not None
            else DEFAULT_PROGRESS_EVERY
        ),
        label=reporter.label if reporter is not None else "psweep",
        collect_stats=bool(sinks),
    )
    result = runner.run(trace, policies, capacities, partition=partition)
    if sinks and runner.stats is not None:
        for sink in sinks:
            sink.merge(runner.stats)
    return result
