"""Zero-copy trace transport over POSIX shared memory.

A sweep fans (policy, capacity) cells out to worker processes that all
replay the *same immutable* :class:`~repro.traces.trace.Trace`.  Pickling
a multi-million-access trace per worker would dominate the fan-out cost,
so the parent instead packs every numpy column into **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment
(:class:`SharedTraceBuffers`) and ships only a tiny picklable
:class:`SharedTraceSpec` — segment name plus per-column dtype/length/
offset — to the pool.  Each worker attaches once (not once per cell),
rebuilds numpy views directly over the shared buffer and constructs a
``Trace`` with ``canonical=True`` so the columns are adopted verbatim:
no sort, no copy, no per-worker duplication of the column data.

Lifecycle: the parent owns the segment and must :meth:`~SharedTraceBuffers.close`
and :meth:`~SharedTraceBuffers.unlink` it (the runner does so in a
``finally``, so segments never leak even when a worker cell fails).
Workers only map the segment; their mappings die with the process.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.traces.trace import Trace

#: Every array column of a Trace, in constructor-argument order.
TRACE_COLUMNS: tuple[str, ...] = (
    "file_sizes",
    "file_tiers",
    "file_datasets",
    "job_users",
    "job_nodes",
    "job_tiers",
    "job_starts",
    "job_ends",
    "access_jobs",
    "access_files",
    "user_domains",
    "node_sites",
    "node_domains",
    "job_labels",
)

#: Shared-memory segment name prefix; the leak tests glob for it.
SEGMENT_PREFIX = "repro_trace_"


@dataclass(frozen=True, slots=True)
class SharedTraceSpec:
    """Everything a worker needs to reattach a trace: the segment name,
    the column layout and the (small) string decoding tables."""

    segment: str
    #: (column name, dtype string, length, byte offset) per column.
    columns: tuple[tuple[str, str, int, int], ...]
    site_names: tuple[str, ...]
    domain_names: tuple[str, ...]

    @property
    def total_bytes(self) -> int:
        if not self.columns:
            return 0
        name, dtype, length, offset = self.columns[-1]
        return offset + np.dtype(dtype).itemsize * length


class SharedTraceBuffers:
    """Pack a trace's columns into one owned shared-memory segment.

    Use as a context manager — exit closes *and unlinks* the segment::

        with SharedTraceBuffers(trace) as buffers:
            pool = ctx.Pool(..., initargs=(buffers.spec, ...))
    """

    def __init__(self, trace: Trace) -> None:
        layout: list[tuple[str, str, int, int]] = []
        offset = 0
        arrays: list[np.ndarray] = []
        for column in TRACE_COLUMNS:
            arr = getattr(trace, column)
            # Align each column to its itemsize so the worker-side views
            # are naturally aligned.
            itemsize = arr.dtype.itemsize
            offset = -(-offset // itemsize) * itemsize
            layout.append((column, arr.dtype.str, len(arr), offset))
            arrays.append(arr)
            offset += arr.nbytes
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=name
        )
        for (column, dtype, length, off), arr in zip(layout, arrays):
            view = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=self.shm.buf, offset=off
            )
            view[:] = arr
        self.spec = SharedTraceSpec(
            segment=self.shm.name,
            columns=tuple(layout),
            site_names=trace.site_names,
            domain_names=trace.domain_names,
        )
        self._unlinked = False

    def close(self) -> None:
        self.shm.close()

    def unlink(self) -> None:
        if not self._unlinked:
            self._unlinked = True
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedTraceBuffers":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.unlink()


def attach_trace(
    spec: SharedTraceSpec,
) -> tuple[Trace, shared_memory.SharedMemory]:
    """Rebuild a trace as zero-copy views over an existing segment.

    Returns the reconstructed trace and the attached segment; the caller
    must keep the segment object alive as long as the trace is used (the
    trace's columns are views into its buffer) and should let it die with
    the process — only the segment's creator unlinks it.

    Workers are forked, so they share the parent's resource tracker:
    this attach re-registers the same name into the tracker's (deduped)
    set, and the creator's single unlink/unregister settles the books.
    """
    shm = shared_memory.SharedMemory(name=spec.segment)
    columns = {
        column: np.ndarray(
            (length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
        )
        for column, dtype, length, offset in spec.columns
    }
    trace = Trace(
        site_names=spec.site_names,
        domain_names=spec.domain_names,
        validate=False,
        canonical=True,
        **columns,
    )
    return trace, shm
