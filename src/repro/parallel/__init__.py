"""Process-parallel sweep engine with shared-memory trace transport.

``repro.parallel`` makes the repository's dominant compute pattern — a
grid of independent (policy, capacity) cache replays over one immutable
trace (Figure 10, the null model, robustness, the ablations) — N-core
fast:

* :class:`ParallelSweepRunner` — fans a sweep grid over a ``fork``
  process pool and merges per-cell metrics into a
  :class:`~repro.cache.simulator.SweepResult` identical to the serial
  path;
* :class:`SharedTraceBuffers` / :func:`attach_trace` — pack a trace's
  numpy columns into one shared-memory segment and rebuild zero-copy
  views per worker (:mod:`repro.parallel.shm`);
* :class:`SweepCellError` — failure wrapper naming the failing cell.

Most callers never touch this module directly: pass ``jobs=N`` to
:func:`repro.cache.simulator.sweep` (or ``--jobs N`` to
``repro-experiments`` and the sweep-backed benchmark drivers).

See ``docs/PERFORMANCE.md`` for the design, the equivalence guarantees
and how to read ``BENCH_sweep.json``.
"""

from repro.parallel.cells import CellError, map_trace_cells
from repro.parallel.plan import (
    DEFAULT_MIN_ACCESSES,
    MIN_CHUNK_ACCESSES,
    SweepPlan,
    min_parallel_accesses,
    plan_sweep,
)
from repro.parallel.runner import (
    DEFAULT_PROGRESS_EVERY,
    ParallelSweepRunner,
    SweepCellError,
    parallel_sweep,
)
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    SharedTraceBuffers,
    SharedTraceSpec,
    TRACE_COLUMNS,
    attach_trace,
)

__all__ = [
    "CellError",
    "map_trace_cells",
    "DEFAULT_MIN_ACCESSES",
    "DEFAULT_PROGRESS_EVERY",
    "MIN_CHUNK_ACCESSES",
    "ParallelSweepRunner",
    "SweepCellError",
    "SweepPlan",
    "min_parallel_accesses",
    "parallel_sweep",
    "plan_sweep",
    "SEGMENT_PREFIX",
    "SharedTraceBuffers",
    "SharedTraceSpec",
    "TRACE_COLUMNS",
    "attach_trace",
]
