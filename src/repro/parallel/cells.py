"""Generic shared-trace fan-out: map picklable payloads over one trace.

:class:`ParallelSweepRunner` is specialized for (policy, capacity)
grids; hierarchy sweeps and other trace-bound workloads need the same
machinery — one immutable trace shipped zero-copy through shared
memory, cells chunked by :func:`~repro.parallel.plan.plan_sweep`, an
auto-serial fallback below the crossover — without the sweep-specific
result shape.  :func:`map_trace_cells` is that machinery with the cell
body abstracted out:

* ``runner(trace, resources, payload) -> result`` is a **module-level
  function** (dispatched by reference, so it pickles by qualified name
  under ``spawn`` and is inherited under ``fork`` — never a closure);
* ``payloads`` and ``resources`` must pickle (they ride the pool
  initializer / task queue), and each ``result`` must pickle back;
* results come back **in payload order**, exactly as the serial loop
  would produce them — the equivalence tests assert list equality;
* a failing cell raises :class:`CellError` naming its payload, and the
  shared-memory segment is unlinked in a ``finally`` even on failure.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Sequence

from repro.parallel.plan import plan_sweep
from repro.parallel.shm import SharedTraceBuffers, attach_trace
from repro.traces.trace import Trace

__all__ = ["CellError", "map_trace_cells"]

#: Runner contract: ``(trace, resources, payload) -> result``.
CellRunner = Callable[[Trace, Any, Any], Any]


class CellError(RuntimeError):
    """A cell failed while mapping payloads over the shared trace."""

    def __init__(self, index: int, payload, cause: BaseException):
        self.index = index
        self.payload = payload
        super().__init__(
            f"trace cell {index} failed for payload {payload!r}: {cause!r}"
        )


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

_WORKER: dict = {}


def _init_cell_worker(spec, runner: CellRunner, resources) -> None:
    trace, shm = attach_trace(spec)
    _WORKER["trace"] = trace
    _WORKER["shm"] = shm  # keep the mapping alive for the process lifetime
    _WORKER["runner"] = runner
    _WORKER["resources"] = resources


def _run_cell_chunk(chunk: tuple) -> list:
    """Run a batch of (index, payload) cells in this worker.

    Mirrors the sweep runner's chunk protocol: a failing cell becomes an
    ``("err", index, exc)`` entry, the chunk's remaining cells still
    run, and the parent raises :class:`CellError` for the first error in
    payload order.
    """
    trace = _WORKER["trace"]
    runner = _WORKER["runner"]
    resources = _WORKER["resources"]
    out = []
    for index, payload in chunk:
        try:
            out.append(("ok", index, runner(trace, resources, payload)))
        except Exception as exc:
            out.append(("err", index, exc))
    return out


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


def map_trace_cells(
    trace: Trace,
    runner: CellRunner,
    payloads: Sequence,
    *,
    jobs: int = 1,
    resources=None,
    accesses_per_cell: int | None = None,
    start_method: str | None = None,
    auto_serial: bool = True,
    oversubscribe: bool = False,
) -> list:
    """Map ``runner`` over ``payloads`` against one shared trace.

    ``jobs`` is a worker ceiling with :func:`repro.parallel.plan.
    plan_sweep` semantics: grids too small to amortize the pool's fixed
    costs run on the plain serial loop instead (identical results),
    unless ``auto_serial=False`` or ``REPRO_PARALLEL_FORCE=1``.
    ``accesses_per_cell`` feeds the crossover estimate and defaults to
    the full trace length — the right figure when every cell replays
    the whole trace, as hierarchy sweeps do.

    ``runner`` must be a module-level function and ``resources`` /
    ``payloads`` / results must pickle; see the module docstring.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    items = list(payloads)
    if not items:
        return []
    if accesses_per_cell is None:
        accesses_per_cell = trace.n_accesses
    plan = plan_sweep(
        len(items),
        accesses_per_cell,
        jobs,
        oversubscribe=oversubscribe,
    )
    if jobs == 1 or (auto_serial and not plan.use_parallel):
        results = []
        for index, payload in enumerate(items):
            try:
                results.append(runner(trace, resources, payload))
            except Exception as exc:
                raise CellError(index, payload, exc) from exc
        return results

    available = multiprocessing.get_all_start_methods()
    method = start_method
    if method is None:
        method = "fork" if "fork" in available else "spawn"
    elif method not in available:
        raise RuntimeError(
            f"start method {method!r} is not available on this "
            f"platform (have: {available})"
        )
    ctx = multiprocessing.get_context(method)

    cells = list(enumerate(items))
    chunks = [
        tuple(cells[k : k + plan.cells_per_chunk])
        for k in range(0, len(cells), plan.cells_per_chunk)
    ]
    processes = max(1, min(plan.workers, len(chunks)))
    results: list = [None] * len(items)
    buffers = SharedTraceBuffers(trace)
    try:
        with ctx.Pool(
            processes,
            initializer=_init_cell_worker,
            initargs=(buffers.spec, runner, resources),
        ) as pool:
            pending = [
                (chunk, pool.apply_async(_run_cell_chunk, (chunk,)))
                for chunk in chunks
            ]
            for chunk, handle in pending:
                try:
                    entries = handle.get()
                except Exception as exc:
                    # The whole chunk failed to round-trip (e.g. an
                    # unpicklable result); blame its first cell.
                    index, payload = chunk[0]
                    raise CellError(index, payload, exc) from exc
                for entry in entries:
                    if entry[0] == "err":
                        _, index, exc = entry
                        raise CellError(index, items[index], exc) from exc
                    _, index, result = entry
                    results[index] = result
    finally:
        buffers.close()
        buffers.unlink()
    return results
