"""Dispatch planning for parallel sweeps: when to fan out, how to chunk.

Process-parallel replay has real fixed costs — forking workers, copying
the trace into shared memory, round-tripping results through a pickle
queue — that only amortize when the grid carries enough replay work.
The measured crossover sits in the low millions of accesses (see
``docs/PERFORMANCE.md``); below it a pool is *slower* than the serial
loop, which is exactly the trap a small default grid walks into.

:func:`plan_sweep` centralizes that decision.  Given the grid shape and
the per-cell access count it returns a :class:`SweepPlan` saying whether
to parallelize at all (``use_parallel``), how many workers the pool
would use, and how cells are batched into worker tasks
(``cells_per_chunk``) so that tiny cells don't pay one pickle round trip
each.  ``repro.parallel.runner.parallel_sweep`` consults the plan to
fall back to the serial loop (the ``--jobs`` flag is a ceiling, never a
demand to go slower), and the ``sweep --dry-run`` CLI prints it.

Environment knobs (read at call time, so tests and operators can
override without re-importing):

``REPRO_PARALLEL_MIN_ACCESSES``
    Minimum total replayed accesses (cells × accesses per cell) worth a
    pool.  Default :data:`DEFAULT_MIN_ACCESSES`.
``REPRO_PARALLEL_FORCE``
    ``1``/``true`` forces ``use_parallel`` for any ``jobs > 1`` request,
    bypassing the threshold and the worker-count check.  A testing and
    benchmarking knob — it is how the equivalence suite exercises the
    pool on small traces and how the crossover itself gets measured.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Total grid accesses below which a pool is assumed slower than the
#: serial loop.  Calibrated against the measured fork+shm+pickle fixed
#: cost of roughly a second against ~1M accesses/s serial replay speed.
DEFAULT_MIN_ACCESSES = 4_000_000

#: Minimum accesses a single worker task should carry: cells smaller
#: than this are batched together so the per-task dispatch overhead
#: (pickle round trip, pool bookkeeping) stays amortized.
MIN_CHUNK_ACCESSES = 262_144

_TRUE = frozenset(("1", "true", "yes", "on"))


@dataclass(frozen=True)
class SweepPlan:
    """How one sweep grid should be dispatched.

    ``workers`` is what the pool would actually use (the ``jobs``
    ceiling clamped to cell and CPU counts); ``cells_per_chunk`` /
    ``n_chunks`` describe the batching of cells into worker tasks; and
    ``use_parallel`` is the go/no-go — when ``False``, ``reason`` says
    why in one human-readable sentence (surfaced by ``sweep
    --dry-run``).
    """

    n_cells: int
    jobs: int
    workers: int
    use_parallel: bool
    cells_per_chunk: int
    n_chunks: int
    total_accesses: int
    reason: str


def min_parallel_accesses() -> int:
    """The parallel threshold, honoring ``REPRO_PARALLEL_MIN_ACCESSES``."""
    raw = os.environ.get("REPRO_PARALLEL_MIN_ACCESSES")
    if raw is None or not raw.strip():
        return DEFAULT_MIN_ACCESSES
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_PARALLEL_MIN_ACCESSES must be an integer, got {raw!r}"
        ) from None
    return max(0, value)


def parallel_forced() -> bool:
    """Whether ``REPRO_PARALLEL_FORCE`` demands the pool regardless."""
    return os.environ.get("REPRO_PARALLEL_FORCE", "").strip().lower() in _TRUE


def plan_sweep(
    n_cells: int,
    accesses_per_cell: int,
    jobs: int,
    *,
    cpus: int | None = None,
    oversubscribe: bool = False,
) -> SweepPlan:
    """Plan the dispatch of an ``n_cells`` grid under a ``jobs`` ceiling.

    ``cpus`` defaults to :func:`os.cpu_count`; pass it explicitly for
    deterministic tests.  ``oversubscribe`` skips the CPU clamp, exactly
    like the runner's knob of the same name.
    """
    if n_cells < 1:
        raise ValueError(f"need at least one cell, got {n_cells}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    accesses_per_cell = max(0, int(accesses_per_cell))
    if cpus is None:
        cpus = os.cpu_count() or 1
    workers = min(jobs, n_cells)
    if not oversubscribe:
        workers = min(workers, max(1, cpus))
    workers = max(1, workers)
    total = n_cells * accesses_per_cell

    # Batch cells into chunks: enough work per task to amortize dispatch,
    # but never so coarse that workers idle (at least one chunk each).
    if accesses_per_cell > 0:
        want = -(-MIN_CHUNK_ACCESSES // accesses_per_cell)  # ceil div
    else:
        want = n_cells
    per_worker = -(-n_cells // workers)
    cells_per_chunk = max(1, min(want, per_worker))
    n_chunks = -(-n_cells // cells_per_chunk)

    if jobs == 1:
        use_parallel = False
        reason = "jobs=1 requested"
    elif parallel_forced():
        use_parallel = True
        reason = "REPRO_PARALLEL_FORCE=1"
    elif workers == 1:
        use_parallel = False
        reason = (
            f"only one worker available (jobs={jobs}, cells={n_cells}, "
            f"cpus={cpus}); a one-worker pool is strictly slower than the "
            f"serial loop"
        )
    else:
        threshold = min_parallel_accesses()
        if total < threshold:
            use_parallel = False
            reason = (
                f"grid too small ({total:,} accesses < "
                f"{threshold:,} threshold); pool setup would dominate"
            )
        else:
            use_parallel = True
            reason = (
                f"{total:,} accesses across {n_cells} cells on "
                f"{workers} workers"
            )
    return SweepPlan(
        n_cells=n_cells,
        jobs=jobs,
        workers=workers,
        use_parallel=use_parallel,
        cells_per_chunk=cells_per_chunk,
        n_chunks=n_chunks,
        total_accesses=total,
        reason=reason,
    )
