"""Popularity–size correlation.

The paper (§3) reports: "Our studies revealed no correlation between
filecule popularity and filecule size."  This module computes the Pearson
and Spearman coefficients between filecule request counts and byte sizes
so the reproduction can state the same (weak-correlation) conclusion with
numbers attached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.filecule import FileculePartition


@dataclass(frozen=True, slots=True)
class CorrelationReport:
    """Pearson/Spearman correlation between two filecule attributes."""

    pearson_r: float
    pearson_p: float
    spearman_rho: float
    spearman_p: float
    n: int

    @property
    def is_negligible(self) -> bool:
        """True when both coefficients are below 0.3 in magnitude —
        the conventional "weak/no correlation" reading."""
        return abs(self.pearson_r) < 0.3 and abs(self.spearman_rho) < 0.3


def popularity_size_correlation(partition: FileculePartition) -> CorrelationReport:
    """Correlate filecule popularity with filecule size (bytes)."""
    requests = partition.requests.astype(np.float64)
    sizes = partition.sizes_bytes.astype(np.float64)
    n = len(requests)
    if n < 3 or requests.std() == 0 or sizes.std() == 0:
        return CorrelationReport(0.0, 1.0, 0.0, 1.0, n)
    pr, pp = stats.pearsonr(requests, sizes)
    sr, sp = stats.spearmanr(requests, sizes)
    return CorrelationReport(
        pearson_r=float(pr),
        pearson_p=float(pp),
        spearman_rho=float(sr),
        spearman_p=float(sp),
        n=n,
    )
