"""Temporal locality analysis: LRU stack distances and inter-reference gaps.

The stack (reuse) distance of a request is the number of *distinct* units
referenced since the previous request to the same unit; the distribution
determines the LRU hit rate at every cache size simultaneously (Mattson's
classic result), which makes it the right lens for explaining Figure 10:
computing the distribution at file vs at filecule granularity shows *why*
coarsening the unit shortens reuse distances.

Implementation: a Fenwick (binary-indexed) tree over request positions —
O(N log N) for N requests — the standard single-pass algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.filecule import FileculePartition
from repro.traces.trace import Trace


class _Fenwick:
    """Prefix-sum tree over request slots."""

    def __init__(self, n: int) -> None:
        self._tree = np.zeros(n + 1, dtype=np.int64)
        self._n = n

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self._n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of slots [0, i)."""
        total = 0
        while i > 0:
            total += int(self._tree[i])
            i -= i & (-i)
        return total


def stack_distances(reference_stream: np.ndarray) -> np.ndarray:
    """Per-request LRU stack distance; first references get -1.

    ``reference_stream`` is any integer unit-id sequence (file ids,
    filecule labels, ...).  The distance counts distinct other units
    touched since the unit's previous reference — 0 means an immediate
    re-reference.
    """
    stream = np.asarray(reference_stream, dtype=np.int64)
    n = len(stream)
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    tree = _Fenwick(n)
    last_pos: dict[int, int] = {}
    for i, unit in enumerate(stream):
        unit = int(unit)
        prev = last_pos.get(unit)
        if prev is not None:
            # distinct units seen strictly between prev and i
            out[i] = tree.prefix(i) - tree.prefix(prev + 1)
            tree.add(prev, -1)  # the unit's marker moves forward
        tree.add(i, 1)
        last_pos[unit] = i
    return out


@dataclass(frozen=True, slots=True)
class ReuseReport:
    """Summary of a reference stream's temporal locality."""

    n_requests: int
    n_units: int
    cold_fraction: float
    median_distance: float
    p90_distance: float
    #: hit rate of an unbounded-unit-count LRU holding k units, for the
    #: requested k values (Mattson: P[distance < k])
    hit_rate_at: dict[int, float]


def reuse_report(
    reference_stream: np.ndarray, ks: tuple[int, ...] = (8, 64, 512)
) -> ReuseReport:
    """Stack-distance summary of a reference stream."""
    stream = np.asarray(reference_stream, dtype=np.int64)
    dist = stack_distances(stream)
    warm = dist[dist >= 0]
    n = len(stream)
    hit_rate_at = {}
    for k in ks:
        hit_rate_at[int(k)] = float((warm < k).sum() / n) if n else 0.0
    return ReuseReport(
        n_requests=n,
        n_units=len(np.unique(stream)) if n else 0,
        cold_fraction=float((dist < 0).mean()) if n else 0.0,
        median_distance=float(np.median(warm)) if len(warm) else float("nan"),
        p90_distance=float(np.quantile(warm, 0.9)) if len(warm) else float("nan"),
        hit_rate_at=hit_rate_at,
    )


def file_vs_filecule_reuse(
    trace: Trace,
    partition: FileculePartition,
    ks: tuple[int, ...] = (8, 64, 512),
) -> tuple[ReuseReport, ReuseReport]:
    """Stack-distance reports of the same trace at both granularities.

    The file-granularity stream is the canonical replay order; the
    filecule stream maps each access through the partition and collapses
    consecutive duplicates (requests into the same filecule by the same
    job are one reuse unit there).
    """
    files = trace.access_files
    file_report = reuse_report(files, ks)
    labels = partition.labels[files]
    if np.any(labels < 0):
        raise ValueError("trace accesses files outside the partition")
    if len(labels):
        keep = np.concatenate(([True], labels[1:] != labels[:-1]))
        labels = labels[keep]
    cule_report = reuse_report(labels, ks)
    return file_report, cule_report
