"""Job input-set overlap diagnostics.

Filecules exist because jobs request *overlapping groups* of files
(datasets).  These diagnostics quantify that structure directly:

* :func:`job_set_reuse` — how often the exact same input set recurs
  (dataset reuse: SAM jobs run on named datasets, so identical sets are
  common);
* :func:`pairwise_jaccard_sample` — the distribution of Jaccard overlap
  between random job pairs, separating "same dataset" (J = 1), "partial
  overlap" (0 < J < 1, what splits filecules) and "disjoint" (J = 0).

Useful both for validating the synthetic generator and for profiling
real SAM-style exports before running the heavier analyses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.trace import Trace
from repro.util.rng import SeedLike, as_generator


@dataclass(frozen=True, slots=True)
class JobSetReuse:
    """Recurrence statistics of exact job input sets."""

    n_traced_jobs: int
    n_distinct_sets: int
    #: fraction of traced jobs whose exact set occurred before
    reuse_fraction: float
    #: request count of the most popular input set
    max_set_requests: int

    @property
    def mean_requests_per_set(self) -> float:
        if self.n_distinct_sets == 0:
            return 0.0
        return self.n_traced_jobs / self.n_distinct_sets


def job_set_reuse(trace: Trace) -> JobSetReuse:
    """Group traced jobs by their exact input set and count recurrences."""
    counts: dict[bytes, int] = {}
    n_traced = 0
    for _, files in trace.iter_jobs():
        if len(files) == 0:
            continue
        n_traced += 1
        signature = files.tobytes()
        counts[signature] = counts.get(signature, 0) + 1
    if n_traced == 0:
        return JobSetReuse(0, 0, 0.0, 0)
    n_distinct = len(counts)
    return JobSetReuse(
        n_traced_jobs=n_traced,
        n_distinct_sets=n_distinct,
        reuse_fraction=(n_traced - n_distinct) / n_traced,
        max_set_requests=max(counts.values()),
    )


@dataclass(frozen=True, slots=True)
class OverlapSample:
    """Sampled pairwise Jaccard overlap between traced jobs."""

    jaccards: np.ndarray

    @property
    def n_pairs(self) -> int:
        return len(self.jaccards)

    @property
    def disjoint_fraction(self) -> float:
        if self.n_pairs == 0:
            return 0.0
        return float((self.jaccards == 0.0).mean())

    @property
    def identical_fraction(self) -> float:
        if self.n_pairs == 0:
            return 0.0
        return float((self.jaccards == 1.0).mean())

    @property
    def partial_fraction(self) -> float:
        """Fraction of pairs with strictly partial overlap — the pairs
        that split datasets into smaller filecules."""
        if self.n_pairs == 0:
            return 0.0
        partial = (self.jaccards > 0.0) & (self.jaccards < 1.0)
        return float(partial.mean())

    @property
    def mean_nonzero_jaccard(self) -> float:
        nz = self.jaccards[self.jaccards > 0]
        return float(nz.mean()) if len(nz) else 0.0


def pairwise_jaccard_sample(
    trace: Trace, n_pairs: int = 2000, seed: SeedLike = 0
) -> OverlapSample:
    """Jaccard overlap of ``n_pairs`` random traced-job pairs.

    Sampling keeps this O(n_pairs × mean job size) regardless of trace
    size; exact all-pairs overlap is quadratic and unnecessary for the
    distributional picture.
    """
    if n_pairs < 0:
        raise ValueError(f"n_pairs must be non-negative, got {n_pairs}")
    traced = np.flatnonzero(trace.files_per_job > 0)
    if len(traced) < 2 or n_pairs == 0:
        return OverlapSample(np.zeros(0))
    rng = as_generator(seed)
    a_idx = traced[rng.integers(0, len(traced), size=n_pairs)]
    b_idx = traced[rng.integers(0, len(traced), size=n_pairs)]
    out = np.empty(n_pairs, dtype=np.float64)
    for i, (a, b) in enumerate(zip(a_idx, b_idx)):
        if a == b:
            out[i] = 1.0
            continue
        fa = trace.job_files(int(a))
        fb = trace.job_files(int(b))
        inter = len(np.intersect1d(fa, fb, assume_unique=True))
        union = len(fa) + len(fb) - inter
        out[i] = inter / union if union else 0.0
    return OverlapSample(out)
