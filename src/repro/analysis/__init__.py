"""Statistical analysis helpers shared by the experiment modules.

Histogramming (linear and log-spaced), distribution summaries, Zipf
rank-frequency fitting (to test the paper's §3.2 claim that filecule
popularity is *not* Zipf) and popularity–size correlation (the paper's
"no correlation" observation).
"""

from repro.analysis.histograms import (
    log_bins,
    histogram,
    cdf_points,
    ccdf_points,
    quantiles,
    DistributionSummary,
    summarize_distribution,
)
from repro.analysis.popularity import (
    ZipfFit,
    fit_zipf,
    popularity_by_tier,
    top_k_by_requests,
)
from repro.analysis.correlation import (
    CorrelationReport,
    popularity_size_correlation,
)
from repro.analysis.temporal import (
    ReuseReport,
    file_vs_filecule_reuse,
    reuse_report,
    stack_distances,
)
from repro.analysis.mrc import (
    MissRateCurve,
    granularity_mrcs,
    lru_miss_rate_curve,
)
from repro.analysis.overlap import (
    JobSetReuse,
    OverlapSample,
    job_set_reuse,
    pairwise_jaccard_sample,
)

__all__ = [
    "log_bins",
    "histogram",
    "cdf_points",
    "ccdf_points",
    "quantiles",
    "DistributionSummary",
    "summarize_distribution",
    "ZipfFit",
    "fit_zipf",
    "popularity_by_tier",
    "top_k_by_requests",
    "CorrelationReport",
    "popularity_size_correlation",
    "ReuseReport",
    "file_vs_filecule_reuse",
    "reuse_report",
    "stack_distances",
    "MissRateCurve",
    "granularity_mrcs",
    "lru_miss_rate_curve",
    "JobSetReuse",
    "OverlapSample",
    "job_set_reuse",
    "pairwise_jaccard_sample",
]
