"""Miss-rate curves from stack distances (Mattson's algorithm).

For a unit-count LRU, the hit rate at every capacity k is
``P[stack distance < k]`` — one pass over the trace yields the *entire*
miss-rate curve.  This module computes MRCs for arbitrary reference
streams and for a trace at file vs filecule granularity, and serves as a
cross-validation oracle for the event-driven simulator (their agreement
is asserted in the test suite).

Capacities here are in *units held*, not bytes: Mattson's single-pass
trick requires the inclusion property, which byte-capacity LRU with
variable sizes does not satisfy exactly.  For DZero-like workloads file
sizes within a tier are narrow (Figure 3), so the unit-count curve is a
faithful proxy; the byte-accurate numbers come from
:func:`repro.cache.simulate`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.temporal import stack_distances
from repro.core.filecule import FileculePartition
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class MissRateCurve:
    """Hit/miss rate of unit-count LRU at every capacity 0..n_units."""

    #: ``hit_rates[k]`` = hit rate with capacity of k units.
    hit_rates: np.ndarray
    n_requests: int
    n_units: int

    def hit_rate(self, k: int) -> float:
        """Hit rate at capacity ``k`` units (clamped to the curve)."""
        if k < 0:
            raise ValueError(f"capacity must be non-negative, got {k}")
        k = min(k, len(self.hit_rates) - 1)
        return float(self.hit_rates[k])

    def miss_rate(self, k: int) -> float:
        return 1.0 - self.hit_rate(k)

    def capacity_for_hit_rate(self, target: float) -> int:
        """Smallest unit capacity achieving ``target`` hit rate.

        Returns ``n_units`` if even a full cache cannot reach it (cold
        misses bound the hit rate).
        """
        if not 0 <= target <= 1:
            raise ValueError(f"target must be in [0, 1], got {target}")
        reached = np.flatnonzero(self.hit_rates >= target - 1e-12)
        return int(reached[0]) if len(reached) else self.n_units


def lru_miss_rate_curve(reference_stream: np.ndarray) -> MissRateCurve:
    """Compute the full unit-count LRU MRC of a reference stream."""
    stream = np.asarray(reference_stream, dtype=np.int64)
    n = len(stream)
    units = len(np.unique(stream)) if n else 0
    if n == 0:
        return MissRateCurve(np.zeros(1), 0, 0)
    dist = stack_distances(stream)
    warm = dist[dist >= 0]
    # hits at capacity k = count of warm distances < k
    counts = np.bincount(warm, minlength=units + 1)[: units + 1]
    hits_up_to = np.concatenate(([0], np.cumsum(counts)))[: units + 1]
    hit_rates = hits_up_to / n
    return MissRateCurve(hit_rates=hit_rates, n_requests=n, n_units=units)


def granularity_mrcs(
    trace: Trace, partition: FileculePartition
) -> tuple[MissRateCurve, MissRateCurve]:
    """(file-granularity MRC, filecule-granularity MRC) of one trace.

    The filecule stream maps every access through the partition without
    collapsing duplicates, matching the optimistic
    :class:`~repro.cache.FileculeLRU` accounting where sibling requests
    of the loading job hit.
    """
    file_curve = lru_miss_rate_curve(trace.access_files)
    labels = partition.labels[trace.access_files]
    if np.any(labels < 0):
        raise ValueError("trace accesses files outside the partition")
    cule_curve = lru_miss_rate_curve(labels)
    return file_curve, cule_curve
