"""Histogram and distribution-summary helpers.

The paper's figures are mostly distributions of heavy-tailed quantities
(files per job, filecule sizes, popularity); log-spaced binning and
CDF/CCDF point sets are the natural renderings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def log_bins(lo: float, hi: float, per_decade: int = 4) -> np.ndarray:
    """Logarithmically spaced bin edges covering ``[lo, hi]``.

    ``per_decade`` edges per factor of 10; the last edge is nudged up so
    ``hi`` always falls inside the final bin.
    """
    if not 0 < lo <= hi:
        raise ValueError(f"need 0 < lo <= hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    n = max(2, int(np.ceil(np.log10(hi / lo) * per_decade)) + 1)
    edges = np.logspace(np.log10(lo), np.log10(hi), n)
    edges[-1] *= 1.0 + 1e-9
    return edges


def histogram(
    values: np.ndarray, bins: np.ndarray | int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Counts per bin; returns (edges, counts)."""
    values = np.asarray(values)
    counts, edges = np.histogram(values, bins=bins)
    return edges, counts


def cdf_points(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted unique values, P[X <= v])."""
    values = np.asarray(values)
    if len(values) == 0:
        return np.zeros(0), np.zeros(0)
    uniq, counts = np.unique(values, return_counts=True)
    return uniq, np.cumsum(counts) / len(values)


def ccdf_points(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CCDF as (sorted unique values, P[X >= v])."""
    values = np.asarray(values)
    if len(values) == 0:
        return np.zeros(0), np.zeros(0)
    uniq, counts = np.unique(values, return_counts=True)
    tail = np.cumsum(counts[::-1])[::-1]
    return uniq, tail / len(values)


def quantiles(values: np.ndarray, qs=(0.25, 0.5, 0.75, 0.9, 0.99)) -> dict[float, float]:
    """Selected quantiles as a dict (empty input yields NaNs)."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return {q: float("nan") for q in qs}
    return {float(q): float(np.quantile(values, q)) for q in qs}


@dataclass(frozen=True, slots=True)
class DistributionSummary:
    """Five-number-plus summary of one distribution."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float
    p90: float
    p99: float

    def row(self) -> list[float | int]:
        """Cells in the order the experiment tables print them."""
        return [
            self.n,
            self.mean,
            self.std,
            self.minimum,
            self.median,
            self.p90,
            self.p99,
            self.maximum,
        ]


def summarize_distribution(values: np.ndarray) -> DistributionSummary:
    """Summary statistics of a (possibly empty) sample."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        nan = float("nan")
        return DistributionSummary(0, nan, nan, nan, nan, nan, nan, nan)
    return DistributionSummary(
        n=len(values),
        mean=float(values.mean()),
        std=float(values.std()),
        minimum=float(values.min()),
        median=float(np.median(values)),
        maximum=float(values.max()),
        p90=float(np.quantile(values, 0.9)),
        p99=float(np.quantile(values, 0.99)),
    )
