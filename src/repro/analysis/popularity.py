"""Popularity analysis: Zipf rank-frequency fitting and per-tier series.

The paper (§3.2) observes that filecule popularity does *not* follow the
Zipf model traditional for web workloads: scientists repeatedly re-request
the same data and interest is partitioned geographically, flattening the
head of the distribution.  :func:`fit_zipf` quantifies this by fitting
``log(frequency) = c - alpha * log(rank)`` and reporting both the exponent
and the goodness of fit; Figure 8 prints the fit per data tier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.filecule import FileculePartition
from repro.traces.trace import Trace


@dataclass(frozen=True, slots=True)
class ZipfFit:
    """Least-squares fit of a rank-frequency distribution in log-log space.

    Attributes
    ----------
    alpha:
        Fitted Zipf exponent (negated slope; pure Zipf has alpha ≈ 1).
    r_squared:
        Goodness of fit; low values mean the distribution is not
        power-law shaped.
    head_flatness:
        Ratio of observed to Zipf-predicted frequency at the median rank,
        anchored at rank 1: > 1 means the head is flatter than the fitted
        power law (the paper's signature deviation).
    n_ranks:
        Number of distinct ranks fitted.
    """

    alpha: float
    r_squared: float
    head_flatness: float
    n_ranks: int

    @property
    def is_zipf_like(self) -> bool:
        """Conventional threshold: a clean power law with alpha near 1."""
        return self.r_squared >= 0.98 and 0.8 <= self.alpha <= 1.3


def fit_zipf(frequencies: np.ndarray) -> ZipfFit:
    """Fit rank-frequency data (any order; will be sorted descending)."""
    freqs = np.sort(np.asarray(frequencies, dtype=np.float64))[::-1]
    freqs = freqs[freqs > 0]
    if len(freqs) < 3:
        return ZipfFit(float("nan"), float("nan"), float("nan"), len(freqs))
    ranks = np.arange(1, len(freqs) + 1, dtype=np.float64)
    result = stats.linregress(np.log(ranks), np.log(freqs))
    alpha = -float(result.slope)
    r2 = float(result.rvalue**2)
    mid = len(freqs) // 2
    predicted_mid = freqs[0] * (ranks[mid] ** -alpha)
    head_flatness = float(freqs[mid] / predicted_mid) if predicted_mid > 0 else np.inf
    return ZipfFit(
        alpha=alpha,
        r_squared=r2,
        head_flatness=head_flatness,
        n_ranks=len(freqs),
    )


def popularity_by_tier(
    trace: Trace, partition: FileculePartition
) -> dict[int, np.ndarray]:
    """Request counts of filecules grouped by dominant tier (Figure 8)."""
    tiers = partition.dominant_tiers(trace)
    requests = partition.requests
    return {
        int(t): requests[tiers == t]
        for t in np.unique(tiers)
    }


def top_k_by_requests(partition: FileculePartition, k: int = 10) -> np.ndarray:
    """Ids of the ``k`` most-requested filecules (most popular first).

    The canonical partition order of :func:`repro.core.find_filecules` is
    already popularity-descending, but this does not assume it.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    order = np.argsort(partition.requests, kind="stable")[::-1]
    return order[:k]
