"""Unified observability: metrics, tracing, structured logging, hooks.

``repro.obs`` is the dependency-free observability layer shared by the
online service (:mod:`repro.service`), the cache simulators
(:mod:`repro.cache.simulator`) and the experiment drivers.  Cache-
operations studies treat visibility as a precondition for tuning — you
cannot characterize what you cannot see — so everything long-running in
this repository reports through the same four primitives:

* :mod:`repro.obs.metrics` — labeled counters/gauges and O(1) geometric
  latency histograms; registries merge across workers and render to
  Prometheus text exposition format (:meth:`MetricsRegistry.expose`);
* :mod:`repro.obs.trace` — lightweight spans with request-id (``rid``)
  propagation, a bounded ring-buffer recorder and JSONL export;
* :mod:`repro.obs.log` — single-line JSON structured logging with
  automatic rid attachment;
* :mod:`repro.obs.instrument` — observation-only callback hooks
  (access/hit/miss/evict/progress) for trace-driven simulation, with a
  stats collector and a throttled live progress reporter;
* :mod:`repro.obs.timeseries` — the flight recorder: ring-buffered time
  series sampled from a registry (counter rates, gauge levels,
  per-interval histogram quantiles) with EWMA smoothing, window
  aggregation and cross-worker slot-aligned merge;
* :mod:`repro.obs.health` — online detectors over those series (hit-rate
  divergence, site-share collapse, latency burn rate, filecule churn
  spikes) emitting structured :class:`HealthEvent`s.

Plus ``repro-top`` (:mod:`repro.obs.top`): a refreshing terminal
dashboard polling a live daemon's ``stats``/``metrics`` ops.

See ``docs/OBSERVABILITY.md`` for metric names, span semantics and the
exposition format.
"""

from repro.obs.metrics import (
    FIRST_BOUND,
    GROWTH,
    N_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    LatencyHistogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    SpanRecorder,
    bind_rid,
    current_rid,
    get_recorder,
    new_rid,
    set_recorder,
    span,
)
from repro.obs.timeseries import (
    Series,
    TimeSeriesRecorder,
)
from repro.obs.health import (
    HealthEvent,
    HealthMonitor,
    default_detectors,
)
from repro.obs.log import StructLogger, configure, get_logger
from repro.obs.instrument import (
    Instrumentation,
    MultiInstrumentation,
    ProgressReporter,
    SimStats,
    progress_from_env,
)

__all__ = [
    "FIRST_BOUND",
    "GROWTH",
    "N_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "LatencyHistogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "bind_rid",
    "current_rid",
    "get_recorder",
    "new_rid",
    "set_recorder",
    "span",
    "Series",
    "TimeSeriesRecorder",
    "HealthEvent",
    "HealthMonitor",
    "default_detectors",
    "StructLogger",
    "configure",
    "get_logger",
    "Instrumentation",
    "MultiInstrumentation",
    "ProgressReporter",
    "SimStats",
    "progress_from_env",
]
