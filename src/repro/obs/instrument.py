"""Observation hooks for trace-driven cache simulation.

:func:`repro.cache.simulator.simulate` (and :func:`~repro.cache.simulator.sweep`)
accept an :class:`Instrumentation`: a callback interface invoked per file
access, hit, miss and eviction, plus a periodic progress callback.  Hooks
are **observation-only** by contract — they receive values, never the
policy — so an instrumented run produces bit-identical miss rates to an
uninstrumented one (asserted by the test suite).

Two implementations ship here:

* :class:`SimStats` — a counting collector (accesses, hits, misses,
  bypasses, requested/fetched/evicted bytes) for programmatic use;
* :class:`ProgressReporter` — a throttled live reporter for long Figure
  10-style sweeps (~1.13M accesses per run at paper scale): hit rate so
  far, evicted bytes, throughput and ETA, one line per interval via
  structured logging or a raw stream.

:func:`progress_from_env` gates reporting behind ``REPRO_PROGRESS=1`` so
batch/pytest runs stay silent by default while an operator watching a
long sweep gets live feedback.
"""

from __future__ import annotations

import os
import sys
import time
from typing import IO

from repro.util.units import format_bytes


class Instrumentation:
    """Callback interface for :func:`repro.cache.simulator.simulate`.

    Subclass and override what you need; every hook defaults to a no-op.
    ``progress_every`` is the number of accesses between
    :meth:`on_progress` calls (0 disables periodic calls; a final call
    with ``done == total`` always happens at the end of a run).
    """

    progress_every: int = 0

    def on_run_start(self, name: str, capacity: int, total_accesses: int) -> None:
        """A simulation run is starting against a fresh policy."""

    def on_access(self, file_id: int, size: int, now: float) -> None:
        """A file request is about to be served."""

    def on_hit(self, file_id: int, size: int) -> None:
        """The request was served from cache."""

    def on_miss(
        self, file_id: int, size: int, bytes_fetched: int, bypassed: bool
    ) -> None:
        """The request missed (``bypassed``: streamed without caching)."""

    def on_evict(self, bytes_evicted: int) -> None:
        """The policy evicted ``bytes_evicted`` bytes to make room."""

    def on_progress(self, done: int, total: int, metrics) -> None:
        """Periodic checkpoint (``metrics``: the run's live
        :class:`~repro.cache.base.CacheMetrics`)."""


class SimStats(Instrumentation):
    """Counting collector: aggregates every hook into plain integers.

    One instance observes one simulation run (counters accumulate and
    never reset); its totals mirror the run's
    :class:`~repro.cache.base.CacheMetrics` and add eviction volume,
    which the metrics object cannot see.
    """

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.bytes_requested = 0
        self.bytes_fetched = 0
        self.bytes_evicted = 0
        self.progress_calls = 0

    def on_access(self, file_id: int, size: int, now: float) -> None:
        self.accesses += 1
        self.bytes_requested += size

    def on_hit(self, file_id: int, size: int) -> None:
        self.hits += 1

    def on_miss(
        self, file_id: int, size: int, bytes_fetched: int, bypassed: bool
    ) -> None:
        self.misses += 1
        self.bytes_fetched += bytes_fetched
        if bypassed:
            self.bypasses += 1

    def on_evict(self, bytes_evicted: int) -> None:
        self.bytes_evicted += bytes_evicted

    def on_progress(self, done: int, total: int, metrics) -> None:
        self.progress_calls += 1

    def merge(self, other: "SimStats") -> "SimStats":
        """Fold another collector's counters into this one (in place).

        Parallel sweep workers each observe their own cells with a
        private ``SimStats``; the parent combines them with this, the
        counting analogue of
        :meth:`repro.obs.metrics.MetricsRegistry.merge`.
        """
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses
        self.bypasses += other.bypasses
        self.bytes_requested += other.bytes_requested
        self.bytes_fetched += other.bytes_fetched
        self.bytes_evicted += other.bytes_evicted
        self.progress_calls += other.progress_calls
        return self

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "hit_rate": self.hit_rate,
            "bytes_requested": self.bytes_requested,
            "bytes_fetched": self.bytes_fetched,
            "bytes_evicted": self.bytes_evicted,
        }


class ProgressReporter(Instrumentation):
    """Live progress lines for long simulation runs.

    Emits at most one line per ``min_interval_s`` seconds (plus one at
    each run's end) showing completion, live hit rate, evicted bytes,
    access throughput and ETA.  Lines go to ``stream`` when given,
    otherwise to the ``repro.obs.sim`` structured logger.
    """

    def __init__(
        self,
        label: str = "sim",
        *,
        progress_every: int = 65536,
        min_interval_s: float = 1.0,
        stream: IO[str] | None = None,
    ) -> None:
        if progress_every < 1:
            raise ValueError(f"progress_every must be >= 1, got {progress_every}")
        self.label = label
        self.progress_every = progress_every
        self.min_interval_s = min_interval_s
        self.stream = stream
        self._run = ""
        self._evicted = 0
        self._t_start = 0.0
        self._t_last = 0.0

    def on_run_start(self, name: str, capacity: int, total_accesses: int) -> None:
        self._run = f"{name}@{format_bytes(capacity, 1)}"
        self._evicted = 0
        self._t_start = time.perf_counter()
        self._t_last = float("-inf")  # always report the first checkpoint

    def on_evict(self, bytes_evicted: int) -> None:
        self._evicted += bytes_evicted

    def on_progress(self, done: int, total: int, metrics) -> None:
        now = time.perf_counter()
        if done < total and now - self._t_last < self.min_interval_s:
            return
        self._t_last = now
        elapsed = now - self._t_start
        rate = done / elapsed if elapsed > 0 else 0.0
        eta = (total - done) / rate if rate > 0 and done < total else 0.0
        if self.stream is not None:
            self.stream.write(
                f"[{self.label} {self._run}] "
                f"{done / total:6.1%} {done}/{total} "
                f"hit={metrics.hit_rate:.3f} "
                f"evicted={format_bytes(self._evicted, 1)} "
                f"{rate:,.0f} acc/s eta={eta:.0f}s\n"
            )
            self.stream.flush()
        else:
            from repro.obs.log import get_logger

            get_logger("repro.obs.sim").info(
                "sim-progress",
                label=self.label,
                run=self._run,
                done=done,
                total=total,
                hit_rate=round(metrics.hit_rate, 4),
                evicted_bytes=self._evicted,
                accesses_per_s=round(rate),
                eta_s=round(eta, 1),
            )


class MultiInstrumentation(Instrumentation):
    """Fan one event stream out to several instrumentations."""

    def __init__(self, *children: Instrumentation) -> None:
        self.children = tuple(children)
        intervals = [c.progress_every for c in children if c.progress_every > 0]
        self.progress_every = min(intervals) if intervals else 0

    def on_run_start(self, name, capacity, total_accesses) -> None:
        for c in self.children:
            c.on_run_start(name, capacity, total_accesses)

    def on_access(self, file_id, size, now) -> None:
        for c in self.children:
            c.on_access(file_id, size, now)

    def on_hit(self, file_id, size) -> None:
        for c in self.children:
            c.on_hit(file_id, size)

    def on_miss(self, file_id, size, bytes_fetched, bypassed) -> None:
        for c in self.children:
            c.on_miss(file_id, size, bytes_fetched, bypassed)

    def on_evict(self, bytes_evicted) -> None:
        for c in self.children:
            c.on_evict(bytes_evicted)

    def on_progress(self, done, total, metrics) -> None:
        for c in self.children:
            c.on_progress(done, total, metrics)


def progress_from_env(
    label: str, *, env: str = "REPRO_PROGRESS", stream: IO[str] | None = None
) -> ProgressReporter | None:
    """A :class:`ProgressReporter` when ``$REPRO_PROGRESS`` is truthy.

    Experiment drivers call this so sweeps stay silent under pytest but
    report live hit rates/ETA when an operator exports ``REPRO_PROGRESS=1``
    (any value other than empty/``0``).  Reports go to stderr.
    """
    value = os.environ.get(env, "")
    if value in ("", "0"):
        return None
    return ProgressReporter(label, stream=stream if stream is not None else sys.stderr)
