"""``repro-top`` — live terminal dashboard for a running daemon.

Polls a daemon's ``stats`` and ``metrics`` protocol ops on an interval
and renders a refreshing text dashboard: uptime, request throughput
(derived from successive counter deltas), per-op latency (count, min,
p50, p99, max), per-site cache hit rates and occupancy, partition shape
and ingest rate.

Usage::

    repro-top --port 7401                # refresh every 2 s until ^C
    repro-top --port 7401 --count 1      # one frame (scripts/CI)
    repro-top --port 7401 --raw          # dump Prometheus text and exit
    repro-top --workers 4 --metrics-port 9401   # whole-cluster view

With ``--workers N`` the dashboard polls every worker's admin HTTP port
(``metrics-port + k``) instead of the data port and renders the merged
cluster view (:func:`repro.service.aggregate.aggregate_stats`): partition
classes merged with the §6 meet, metric registries folded bucket-exactly.

When the daemon runs its flight recorder (``repro-serve
--sample-every``), each frame also shows ring-buffer sparklines for the
headline series (request rate, ingest p99, hit rate) and the most recent
health events, polled through the ``history`` protocol op (or merged
across workers with :func:`repro.service.aggregate.aggregate_history`).

Rendering is split from polling: :func:`render_dashboard` is a pure
function of two ``stats`` payloads (current + previous, for rates), so
the layout is unit-testable without a server.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.service.client import ServiceClient, ServiceError
from repro.util.units import format_bytes

#: ANSI: clear screen and home the cursor (one frame replaces the last).
CLEAR = "\x1b[H\x1b[2J"

#: Eight-level block ramp used by :func:`sparkline`.
SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: ``history`` series shown as sparklines, in panel order, with labels.
SPARK_SERIES = (
    ("rate:requests", "req/s"),
    ("p99:op.ingest", "p99 ms"),
    ("derived:hit_rate", "hit rate"),
)

#: Health events shown per frame (newest last, like a tail).
HEALTH_EVENT_ROWS = 5


def _rate(current: dict, previous: dict | None, interval: float | None) -> float:
    """Requests/s from two successive counter snapshots."""
    if previous is None or not interval or interval <= 0:
        return 0.0
    now = current.get("counters", {}).get("requests", 0)
    before = previous.get("counters", {}).get("requests", 0)
    return max(now - before, 0) / interval


def _ms(value: float) -> str:
    return f"{value:8.2f}"


def sparkline(values: list[float], width: int = 40) -> str:
    """Render ``values`` as a fixed-width block-character sparkline.

    The newest ``width`` values map onto the eight-level ramp, scaled to
    the rendered window's own min/max (a flat window renders as all-low
    blocks, so level changes are what catch the eye).
    """
    if not values:
        return ""
    window = [float(v) for v in values[-width:]]
    lo, hi = min(window), max(window)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[0] * len(window)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, int((v - lo) / span * len(SPARK_CHARS)))]
        for v in window
    )


def _history_series_values(history: dict, name: str) -> list[float]:
    """Resolved values for one series in a ``history`` payload."""
    from repro.obs.timeseries import Series

    for state in history.get("series", []):
        if state.get("name") == name:
            return Series.from_state_dict(state).values()
    return []


def _render_history_panels(history: dict) -> list[str]:
    """Sparkline + health-event dashboard lines for a ``history`` payload."""
    lines: list[str] = []
    sparks = []
    for name, label in SPARK_SERIES:
        values = _history_series_values(history, name)
        if values:
            sparks.append((label, values))
    if sparks:
        lines.append("")
        samples = history.get("samples", 0)
        interval = history.get("interval", 0.0)
        lines.append(
            f"flight recorder — {samples:,} samples every {interval:g}s"
        )
        for label, values in sparks:
            lines.append(f"{label:<10}{sparkline(values):<42}{values[-1]:>10.2f}")
    events = history.get("health", {}).get("events", [])
    if events:
        lines.append("")
        lines.append(f"health events ({len(events)} buffered)")
        for event in events[-HEALTH_EVENT_ROWS:]:
            lines.append(
                f"  [{event.get('severity', '?'):<8}] "
                f"t={event.get('ts', 0.0):8.1f}s "
                f"{event.get('detector', '?')}: {event.get('message', '')}"
            )
    return lines


def render_dashboard(
    stats: dict,
    *,
    previous: dict | None = None,
    interval: float | None = None,
    endpoint: str = "",
    exposition_samples: int | None = None,
    history: dict | None = None,
) -> str:
    """Render one dashboard frame from a ``stats`` op result.

    ``previous``/``interval`` (the prior poll's ``server`` snapshot and
    the seconds between polls) turn monotonic counters into rates.
    ``history``, when given, is a ``history`` op payload (or the
    cluster-merged equivalent) and adds the sparkline and health-event
    panels.
    """
    server = stats.get("server", {})
    counters = server.get("counters", {})
    uptime = server.get("uptime_seconds", 0.0)
    rps = _rate(server, previous, interval)

    lines = [
        f"repro-top — {endpoint}  policy={stats.get('policy', '?')}  "
        f"capacity={format_bytes(stats.get('capacity_bytes', 0), 1)}  "
        f"up {uptime:,.0f}s",
        f"jobs {stats.get('jobs_observed', 0):,}   "
        f"files {stats.get('files_observed', 0):,}   "
        f"filecules {stats.get('n_classes', 0):,}   "
        f"requests {counters.get('requests', 0):,} ({rps:,.0f}/s)   "
        f"errors {counters.get('errors', 0):,}",
    ]

    latency = server.get("latency", {})
    if latency:
        lines.append("")
        lines.append(
            f"{'op':<16}{'count':>10}{'min ms':>10}{'p50 ms':>10}"
            f"{'p99 ms':>10}{'max ms':>10}"
        )
        for op, h in sorted(latency.items()):
            lines.append(
                f"{op:<16}{h.get('count', 0):>10,}"
                f"{_ms(h.get('min_ms', 0.0)):>10}{_ms(h.get('p50_ms', 0.0)):>10}"
                f"{_ms(h.get('p99_ms', 0.0)):>10}{_ms(h.get('max_ms', 0.0)):>10}"
            )

    sites = stats.get("sites", {})
    if sites:
        lines.append("")
        lines.append(
            f"{'site':<8}{'requests':>10}{'hit%':>8}{'byte-miss%':>12}{'used':>12}"
        )
        for site, s in sorted(sites.items(), key=lambda kv: int(kv[0])):
            lines.append(
                f"{site:<8}{s.get('requests', 0):>10,}"
                f"{s.get('hit_rate', 0.0) * 100:>7.1f}%"
                f"{s.get('byte_miss_rate', 0.0) * 100:>11.1f}%"
                f"{format_bytes(s.get('used_bytes', 0), 1):>12}"
            )

    top = stats.get("top_filecules", [])
    if top:
        lines.append("")
        lines.append(f"{'filecule':<10}{'files':>8}{'requests':>10}{'bytes':>12}")
        for fc in top[:5]:
            lines.append(
                f"{fc.get('class_id', '?'):<10}{fc.get('n_files', 0):>8,}"
                f"{fc.get('requests', 0):>10,}"
                f"{format_bytes(fc.get('bytes', 0), 1):>12}"
            )

    if history is not None:
        lines.extend(_render_history_panels(history))

    if exposition_samples is not None:
        lines.append("")
        lines.append(f"exposition: {exposition_samples} Prometheus samples")
    return "\n".join(lines)


def count_exposition_samples(body: str) -> int:
    """Number of sample lines (non-comment, non-blank) in exposition text."""
    return sum(
        1
        for line in body.splitlines()
        if line.strip() and not line.startswith("#")
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live dashboard for a running repro-serve daemon.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7401)
    parser.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls"
    )
    parser.add_argument(
        "--count", type=int, default=0, help="frames to render (0 = forever)"
    )
    parser.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of redrawing in place",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="print one Prometheus exposition payload and exit",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="aggregate a cluster's N workers over their admin ports",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="BASE",
        help="cluster admin port base (worker k listens on BASE + k)",
    )
    args = parser.parse_args(argv)
    if args.workers > 1:
        return _main_cluster(args)
    endpoint = f"{args.host}:{args.port}"

    try:
        client = ServiceClient(args.host, args.port)
    except OSError as exc:
        print(f"repro-top: cannot connect to {endpoint}: {exc}", file=sys.stderr)
        return 1

    try:
        if args.raw:
            print(client.metrics()["body"], end="")
            return 0
        previous = None
        frame = 0
        while True:
            stats = client.stats()
            samples = count_exposition_samples(client.metrics()["body"])
            try:
                history = client.history(last=64)
            except ServiceError:  # pre-flight-recorder daemon
                history = None
            rendered = render_dashboard(
                stats,
                previous=previous,
                interval=args.interval if previous is not None else None,
                endpoint=endpoint,
                exposition_samples=samples,
                history=history,
            )
            if not args.no_clear:
                sys.stdout.write(CLEAR)
            print(rendered, flush=True)
            previous = stats.get("server")
            frame += 1
            if args.count and frame >= args.count:
                return 0
            time.sleep(args.interval)
    except (ConnectionError, OSError) as exc:
        print(f"repro-top: connection lost: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    finally:
        try:
            client.close()
        except OSError:
            pass


def _main_cluster(args: argparse.Namespace) -> int:
    """Aggregated-dashboard loop for ``--workers N`` (admin-port polling)."""
    import urllib.error

    from repro.service.aggregate import (
        aggregate_history,
        aggregate_registry,
        aggregate_stats,
        worker_ports,
    )

    if args.metrics_port is None:
        print(
            "repro-top: --workers needs --metrics-port (admin port base)",
            file=sys.stderr,
        )
        return 2
    ports = worker_ports(args.metrics_port, args.workers)
    endpoint = f"{args.host}:{ports[0]}..{ports[-1]} ({args.workers} workers)"
    try:
        if args.raw:
            print(aggregate_registry(args.host, ports).expose(), end="")
            return 0
        previous = None
        frame = 0
        while True:
            stats = aggregate_stats(args.host, ports)
            samples = count_exposition_samples(
                aggregate_registry(args.host, ports).expose()
            )
            try:
                history = aggregate_history(args.host, ports)
            except urllib.error.HTTPError:  # pre-flight-recorder workers
                history = None
            rendered = render_dashboard(
                stats,
                previous=previous,
                interval=args.interval if previous is not None else None,
                endpoint=endpoint,
                exposition_samples=samples,
                history=history,
            )
            if not args.no_clear:
                sys.stdout.write(CLEAR)
            print(rendered, flush=True)
            previous = stats.get("server")
            frame += 1
            if args.count and frame >= args.count:
                return 0
            time.sleep(args.interval)
    except (ConnectionError, OSError, urllib.error.URLError) as exc:
        print(f"repro-top: cluster poll failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
