"""Online health detectors over flight-recorder time series.

Each detector watches one failure signature in the series a
:class:`~repro.obs.timeseries.TimeSeriesRecorder` produces and emits
structured :class:`HealthEvent`s while the signature holds:

- :class:`HitRateDivergenceDetector` — the per-interval global hit rate
  (``derived:hit_rate``) diverges from its slow EWMA baseline.  Fires
  *up* on a flash crowd (a hot set suddenly dominating) and *down* on a
  phase shift or scan flood (cold files flushing the cache).  During
  warmup the baseline simply tracks the signal (a cache filling from
  empty is a trend, not an anomaly); afterwards it adapts only slowly —
  and far slower still while firing, so a sustained shift keeps firing
  instead of becoming the new normal, yet can never lock onto a stale
  baseline forever.
- :class:`SiteShareCollapseDetector` — an established site's share of
  total request traffic collapses below a fraction of its learned
  baseline share for several consecutive intervals.  Only sites whose
  baseline share clears ``min_share`` are eligible: below that,
  intermittent traffic is indistinguishable from collapse at sampling
  resolution (shares, not absolute rates, so bursty totals cancel out).
- :class:`LatencyBurnRateDetector` — the fraction of recent intervals
  whose ingest p99 exceeded the SLO crosses a burn threshold.
- :class:`ChurnSpikeDetector` — the filecule class count jumps by more
  than a multiple of its typical per-interval movement (a scan flood
  shattering the partition, or mass dissolution under decay).

Detectors are *online*: :meth:`HealthMonitor.observe` is called once
per sample tick, each detector processes only slots it has not seen,
and baselines freeze (or adapt only slowly) while a detector is firing
so anomalies do not get absorbed into "normal".  Events land in a ring
buffer (:data:`DEFAULT_EVENT_CAPACITY`), so the monitor, like the
recorder, holds constant memory.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.timeseries import TimeSeriesRecorder

#: Ring capacity of the monitor's event buffer.
DEFAULT_EVENT_CAPACITY = 256

SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class HealthEvent:
    """One structured detector firing.

    ``ts`` is on the sampling clock (the recorder's ``now``); ``value``
    is the offending measurement and ``evidence`` carries the detector's
    working numbers (baseline, threshold, deficit, ...) so an operator —
    or a scoring harness — can audit the call.
    """

    detector: str
    severity: str
    ts: float
    value: float
    message: str
    evidence: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "ts": self.ts,
            "value": self.value,
            "message": self.message,
            "evidence": self.evidence,
        }


class Detector:
    """Base class: tracks the last slot seen per series it consumes."""

    name = "detector"

    def __init__(self) -> None:
        self._last_slot: int | None = None

    def _new_points(self, series) -> list[tuple[int, float, float]]:
        """Points of ``series`` strictly after the last slot processed."""
        if series is None:
            return []
        points = series.points()
        if self._last_slot is not None:
            points = [p for p in points if p[0] > self._last_slot]
        if points:
            self._last_slot = points[-1][0]
        return points

    def observe(self, recorder: TimeSeriesRecorder) -> list[HealthEvent]:
        raise NotImplementedError


class HitRateDivergenceDetector(Detector):
    """Fast-EWMA hit rate diverging from a slow, nearly-frozen baseline.

    Three learning regimes for the baseline: during ``warmup`` ticks it
    *tracks* the fast EWMA outright (a cache filling from empty is a
    trend to settle into, not an anomaly); in the quiet state it adapts
    with ``baseline_alpha``; while firing it adapts with the much
    smaller ``leak_alpha`` — slow enough that a sustained shift keeps
    firing across a realistic anomaly window, fast enough that the
    detector can never lock onto a stale baseline indefinitely.
    """

    name = "hit-rate-divergence"

    def __init__(
        self,
        threshold: float = 0.15,
        *,
        alpha: float = 0.4,
        baseline_alpha: float = 0.1,
        leak_alpha: float = 0.02,
        warmup: int = 8,
    ) -> None:
        super().__init__()
        self.threshold = threshold
        self.alpha = alpha
        self.baseline_alpha = baseline_alpha
        self.leak_alpha = leak_alpha
        self.warmup = warmup
        self._fast: float | None = None
        self._baseline: float | None = None
        self._ticks = 0

    def observe(self, recorder: TimeSeriesRecorder) -> list[HealthEvent]:
        events: list[HealthEvent] = []
        series = recorder.get("derived:hit_rate")
        for slot, value, _weight in self._new_points(series):
            ts = slot * recorder.interval
            if self._fast is None:
                self._fast = self._baseline = value
                self._ticks = 1
                continue
            self._fast = self.alpha * value + (1 - self.alpha) * self._fast
            self._ticks += 1
            if self._ticks <= self.warmup:
                # Settling: follow the signal, emit nothing.
                self._baseline = self._fast
                continue
            divergence = self._fast - self._baseline
            firing = abs(divergence) > self.threshold
            if firing:
                direction = "above" if divergence > 0 else "below"
                events.append(
                    HealthEvent(
                        detector=self.name,
                        severity="warning",
                        ts=ts,
                        value=self._fast,
                        message=(
                            f"hit rate {self._fast:.3f} diverged {direction} "
                            f"baseline {self._baseline:.3f}"
                        ),
                        evidence={
                            "baseline": self._baseline,
                            "divergence": divergence,
                            "threshold": self.threshold,
                            "tick_hit_rate": value,
                        },
                    )
                )
            alpha = self.leak_alpha if firing else self.baseline_alpha
            self._baseline += alpha * (self._fast - self._baseline)
        return events


class SiteShareCollapseDetector(Detector):
    """An established site's traffic share collapses vs. its baseline.

    Works on *shares* of the per-interval total, so bursty aggregate
    traffic cancels out of the signal.  A site becomes eligible once its
    learned share baseline clears ``min_share`` after ``warmup``
    observed ticks — below that floor, naturally intermittent traffic
    is indistinguishable from a collapse at sampling resolution (and a
    transient failover target that appears for a few ticks never gets a
    baseline worth alarming on).  The detector fires after
    ``consecutive`` collapsed ticks in a row and keeps firing each
    further collapsed tick; the baseline freezes while collapsed, so the
    outage is never learned as the new normal.
    """

    name = "site-share-collapse"

    def __init__(
        self,
        collapse_ratio: float = 0.25,
        *,
        min_share: float = 0.2,
        share_alpha: float = 0.1,
        consecutive: int = 2,
        warmup: int = 6,
        min_total: float = 1.0,
    ) -> None:
        super().__init__()
        self.collapse_ratio = collapse_ratio
        self.min_share = min_share
        self.share_alpha = share_alpha
        self.consecutive = consecutive
        self.warmup = warmup
        self.min_total = min_total
        self._share: dict[str, float] = {}
        self._seen: dict[str, int] = {}
        self._streak: dict[str, int] = {}

    def observe(self, recorder: TimeSeriesRecorder) -> list[HealthEvent]:
        events: list[HealthEvent] = []
        per_site: dict[str, dict[int, float]] = {}
        slots: set[int] = set()
        for series in recorder.matching("rate:site_requests{"):
            site = series.name.split('site="', 1)[-1].rstrip('"}')
            pts = self._new_points_named(series)
            if pts:
                per_site[site] = {s: v for s, v, _ in pts}
                slots.update(per_site[site])
        known = set(self._share) | set(per_site)
        for slot in sorted(slots):
            ts = slot * recorder.interval
            # Rates share the slot's dt, so shares of rates == shares of counts.
            rates = {s: per_site.get(s, {}).get(slot, 0.0) for s in known}
            total = sum(rates.values())
            if total * recorder.interval < self.min_total:
                continue  # a globally-quiet tick says nothing about shares
            for site, rate in rates.items():
                share = rate / total
                baseline = self._share.get(site)
                seen = self._seen.get(site, 0) + 1
                self._seen[site] = seen
                if baseline is None:
                    self._share[site] = share
                    continue
                eligible = seen > self.warmup and baseline >= self.min_share
                collapsed = (
                    eligible and share <= self.collapse_ratio * baseline
                )
                if collapsed:
                    streak = self._streak.get(site, 0) + 1
                    self._streak[site] = streak
                    if streak >= self.consecutive:
                        events.append(
                            HealthEvent(
                                detector=self.name,
                                severity="critical",
                                ts=ts,
                                value=share,
                                message=(
                                    f"site {site} request share collapsed "
                                    f"to {share:.1%} (baseline "
                                    f"{baseline:.1%})"
                                ),
                                evidence={
                                    "site": site,
                                    "share": share,
                                    "baseline_share": baseline,
                                    "collapse_ratio": self.collapse_ratio,
                                    "streak": streak,
                                },
                            )
                        )
                else:
                    # Baseline learns only outside a collapse streak.
                    self._streak[site] = 0
                    self._share[site] = (
                        self.share_alpha * share
                        + (1 - self.share_alpha) * baseline
                    )
        return events

    def _new_points_named(self, series) -> list[tuple[int, float, float]]:
        # Per-series slot tracking: reuse the base helper but keyed per
        # site, since each site series advances independently.
        last = getattr(self, "_last_slots", None)
        if last is None:
            last = self._last_slots = {}
        points = series.points()
        prev = last.get(series.name)
        if prev is not None:
            points = [p for p in points if p[0] > prev]
        if points:
            last[series.name] = points[-1][0]
        return points


class LatencyBurnRateDetector(Detector):
    """Ingest p99 exceeding the SLO in too many recent intervals."""

    name = "latency-burn-rate"

    def __init__(
        self,
        slo_ms: float = 5.0,
        *,
        window: int = 8,
        burn_threshold: float = 0.5,
        series_name: str = "p99:op.ingest",
    ) -> None:
        super().__init__()
        self.slo_seconds = slo_ms / 1e3
        self.window = window
        self.burn_threshold = burn_threshold
        self.series_name = series_name
        self._breaches: deque[bool] = deque(maxlen=window)

    def observe(self, recorder: TimeSeriesRecorder) -> list[HealthEvent]:
        events: list[HealthEvent] = []
        for slot, value, _weight in self._new_points(recorder.get(self.series_name)):
            self._breaches.append(value > self.slo_seconds)
            if len(self._breaches) < self.window:
                continue
            burn = sum(self._breaches) / len(self._breaches)
            if burn >= self.burn_threshold:
                events.append(
                    HealthEvent(
                        detector=self.name,
                        severity="critical",
                        ts=slot * recorder.interval,
                        value=value * 1e3,
                        message=(
                            f"ingest p99 {value * 1e3:.2f}ms burned "
                            f"{burn:.0%} of the last {self.window} intervals "
                            f"(SLO {self.slo_seconds * 1e3:.2f}ms)"
                        ),
                        evidence={
                            "burn_rate": burn,
                            "slo_ms": self.slo_seconds * 1e3,
                            "window": self.window,
                        },
                    )
                )
        return events


class ChurnSpikeDetector(Detector):
    """Filecule class count moving far beyond its typical tick delta."""

    name = "churn-spike"

    def __init__(
        self,
        factor: float = 4.0,
        *,
        min_abs: float = 8.0,
        alpha: float = 0.2,
        warmup: int = 4,
        series_name: str = "gauge:filecule_classes",
    ) -> None:
        super().__init__()
        self.factor = factor
        self.min_abs = min_abs
        self.alpha = alpha
        self.warmup = warmup
        self.series_name = series_name
        self._prev: float | None = None
        self._typical: float = 0.0
        self._ticks = 0

    def observe(self, recorder: TimeSeriesRecorder) -> list[HealthEvent]:
        events: list[HealthEvent] = []
        for slot, value, _weight in self._new_points(recorder.get(self.series_name)):
            if self._prev is None:
                self._prev = value
                continue
            delta = abs(value - self._prev)
            self._prev = value
            self._ticks += 1
            limit = max(self.min_abs, self.factor * self._typical)
            if self._ticks > self.warmup and delta > limit:
                events.append(
                    HealthEvent(
                        detector=self.name,
                        severity="warning",
                        ts=slot * recorder.interval,
                        value=delta,
                        message=(
                            f"filecule class count moved {delta:.0f} in one "
                            f"interval (typical {self._typical:.1f})"
                        ),
                        evidence={
                            "typical_delta": self._typical,
                            "limit": limit,
                            "classes": value,
                        },
                    )
                )
            else:
                self._typical = self.alpha * delta + (1 - self.alpha) * self._typical
        return events


def default_detectors() -> list[Detector]:
    """The standard panel the daemon runs under ``--health``."""
    return [
        HitRateDivergenceDetector(),
        SiteShareCollapseDetector(),
        LatencyBurnRateDetector(),
        ChurnSpikeDetector(),
    ]


class HealthMonitor:
    """Runs a detector panel against a recorder; ring-buffers events."""

    def __init__(
        self,
        recorder: TimeSeriesRecorder,
        detectors: Iterable[Detector] | None = None,
        *,
        capacity: int = DEFAULT_EVENT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.recorder = recorder
        self.detectors = list(detectors) if detectors is not None else default_detectors()
        self.capacity = capacity
        self.dropped = 0
        self._events: deque[HealthEvent] = deque(maxlen=capacity)

    def observe(self) -> list[HealthEvent]:
        """Run every detector once; record and return the new events."""
        new: list[HealthEvent] = []
        for detector in self.detectors:
            new.extend(detector.observe(self.recorder))
        for event in new:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
        return new

    def events(self) -> list[HealthEvent]:
        """Retained events, oldest first."""
        return list(self._events)

    def counts(self) -> dict[str, int]:
        """Event counts per detector (retained window only)."""
        out: dict[str, int] = {}
        for event in self._events:
            out[event.detector] = out.get(event.detector, 0) + 1
        return out

    def to_jsonl(self) -> str:
        return "".join(json.dumps(e.as_dict()) + "\n" for e in self._events)

    def export_jsonl(self, path) -> int:
        """Write retained events as JSONL; returns the number written."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event.as_dict()) + "\n")
        return len(events)


__all__ = [
    "DEFAULT_EVENT_CAPACITY",
    "SEVERITIES",
    "ChurnSpikeDetector",
    "Detector",
    "HealthEvent",
    "HealthMonitor",
    "HitRateDivergenceDetector",
    "LatencyBurnRateDetector",
    "SiteShareCollapseDetector",
    "default_detectors",
]
