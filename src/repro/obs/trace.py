"""Lightweight tracing: spans, request ids, a ring-buffer recorder.

A *span* is one timed unit of work (an op handled by the daemon, a
simulation phase, a snapshot write) with a name, a duration, arbitrary
key/value fields and an optional *request id* (``rid``).  Rids originate
at the caller — the NDJSON protocol carries them end to end (request →
span → response → slow-op log line) so one slow client request can be
chased through the whole system.

Recording is deliberately simple: spans land in a fixed-size ring buffer
(:class:`SpanRecorder`), old spans fall off the back, and the buffer can
be exported as JSONL at any time.  No sampling, no clock coordination,
no external dependencies.

Usage::

    from repro.obs import trace

    with trace.span("advise", site=3) as fields:
        plan = build_plan(...)
        fields["n_entries"] = len(plan)

    trace.get_recorder().export_jsonl("spans.jsonl")

The current rid is carried in a :class:`contextvars.ContextVar`, so it
flows through ``async`` code without explicit plumbing: bind it once per
request (:func:`bind_rid`) and every span and structured log record
inside picks it up.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from contextvars import ContextVar
from pathlib import Path
from typing import Iterator

#: Default ring-buffer capacity of the process-global recorder.
DEFAULT_CAPACITY = 2048

_current_rid: ContextVar[str | None] = ContextVar("repro_obs_rid", default=None)
_rid_counter = itertools.count(1)


def current_rid() -> str | None:
    """The request id bound to the current (async) context, if any."""
    return _current_rid.get()


def new_rid(prefix: str = "r") -> str:
    """Mint a process-unique request id (``<prefix><pid>-<n>``)."""
    return f"{prefix}{os.getpid()}-{next(_rid_counter)}"


@contextlib.contextmanager
def bind_rid(rid: str | None) -> Iterator[str | None]:
    """Bind ``rid`` as the current request id for the enclosed block."""
    token = _current_rid.set(rid)
    try:
        yield rid
    finally:
        _current_rid.reset(token)


@dataclass(slots=True)
class Span:
    """One completed unit of work."""

    name: str
    ts: float              # wall-clock start, epoch seconds
    duration_s: float
    rid: str | None = None
    status: str = "ok"     # "ok" | "error"
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        record = {
            "name": self.name,
            "ts": round(self.ts, 6),
            "duration_ms": round(self.duration_s * 1e3, 4),
            "status": self.status,
        }
        if self.rid is not None:
            record["rid"] = self.rid
        record.update(self.fields)
        return record


class SpanRecorder:
    """Bounded in-memory span sink: a thread-safe ring buffer.

    Keeps the most recent ``capacity`` spans; recording is O(1) and never
    blocks or grows memory, so it is safe to leave on in production.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0  # spans pushed off the back of the ring
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(span)

    def __len__(self) -> int:
        return len(self._ring)

    def spans(self) -> list[Span]:
        """The retained spans, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.dropped = 0

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(span.as_dict(), separators=(",", ":"), default=str) + "\n"
            for span in self.spans()
        )

    def export_jsonl(self, path: str | Path) -> int:
        """Write the retained spans as JSONL; returns the span count."""
        spans = self.spans()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            for span in spans:
                fh.write(
                    json.dumps(span.as_dict(), separators=(",", ":"), default=str)
                    + "\n"
                )
        return len(spans)


_recorder = SpanRecorder()


def get_recorder() -> SpanRecorder:
    return _recorder


def set_recorder(recorder: SpanRecorder) -> SpanRecorder:
    """Replace the process-global recorder; returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


@contextlib.contextmanager
def span(
    name: str,
    *,
    recorder: SpanRecorder | None = None,
    rid: str | None = None,
    **fields,
) -> Iterator[dict]:
    """Time a block of work and record it as a :class:`Span`.

    Yields the span's mutable ``fields`` dict so the block can annotate
    outcomes (counts, byte totals, cache decisions).  An exception marks
    the span ``status="error"`` and propagates.  The rid defaults to the
    context-bound one (:func:`bind_rid`).
    """
    rec = recorder if recorder is not None else _recorder
    if rid is None:
        rid = _current_rid.get()
    ts = time.time()
    t0 = time.perf_counter()
    status = "ok"
    try:
        yield fields
    except BaseException:
        status = "error"
        raise
    finally:
        rec.record(
            Span(
                name=name,
                ts=ts,
                duration_s=time.perf_counter() - t0,
                rid=rid,
                status=status,
                fields=fields,
            )
        )
