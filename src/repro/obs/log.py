"""Structured logging: one JSON object per line, machine-parseable.

Replaces ad-hoc prints and printf-style log lines in the service and the
load generator with records of the shape::

    {"ts": 1754438400.123456, "level": "info", "logger": "repro.service",
     "event": "serving", "host": "127.0.0.1", "port": 7401}

Design points:

* **one line per record** — greppable, ``jq``-able, safe to interleave
  from multiple threads (writes hold a module lock);
* **event + fields, not messages** — the ``event`` is a stable machine
  key; everything else is data, so dashboards never parse prose;
* **rid auto-attachment** — when a request id is bound via
  :func:`repro.obs.trace.bind_rid`, every record inside that context
  carries it, tying log lines to protocol requests and spans;
* **no dependencies, no handlers** — records go to a configurable stream
  (default: ``sys.stderr`` looked up at write time, so redirection and
  test capture work).

Usage::

    from repro.obs.log import get_logger
    slog = get_logger("repro.service")
    slog.info("snapshot-written", path=path, n_jobs=receipt["n_jobs"])
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO

from repro.obs import trace as _trace

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_lock = threading.Lock()
_stream: IO[str] | None = None  # None -> sys.stderr at write time
_min_level = LEVELS["info"]


def configure(
    stream: IO[str] | None = None, min_level: str = "info"
) -> None:
    """Set the sink and threshold for every :class:`StructLogger`.

    ``stream=None`` restores the default (``sys.stderr`` resolved at
    write time).  ``min_level`` is one of ``debug``/``info``/``warning``/
    ``error``.
    """
    global _stream, _min_level
    if min_level not in LEVELS:
        raise ValueError(
            f"unknown level {min_level!r}; choose from {sorted(LEVELS)}"
        )
    _stream = stream
    _min_level = LEVELS[min_level]


class StructLogger:
    """A named emitter of single-line JSON records."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def log(self, level: str, event: str, **fields) -> None:
        if LEVELS[level] < _min_level:
            return
        record: dict = {
            "ts": round(time.time(), 6),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        rid = _trace.current_rid()
        if rid is not None:
            record["rid"] = rid
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        with _lock:
            stream = _stream if _stream is not None else sys.stderr
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                pass  # closed/broken sink must never take the service down

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


_loggers: dict[str, StructLogger] = {}


def get_logger(name: str) -> StructLogger:
    """Get (or create) the structured logger with this name."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = StructLogger(name)
    return logger
