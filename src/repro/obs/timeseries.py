"""Flight recorder: constant-memory time series sampled from a registry.

:class:`MetricsRegistry` answers "what is the total now"; this module
answers "what happened over the last few minutes" without ever growing.
A :class:`TimeSeriesRecorder` samples a registry on a fixed cadence and
derives *per-interval* series from it:

- counters become ``rate:<key>`` series (delta since the last sample
  divided by the elapsed time);
- cumulative gauges (``jobs_observed``, ``site_requests``,
  ``site_hits`` — monotone totals the server republishes as gauges)
  are rate-ified the same way;
- level gauges become ``gauge:<key>`` series (``*_rate`` gauges average
  across workers, everything else sums);
- histograms yield ``p50:<key>`` / ``p99:<key>`` quantiles of the
  observations *in the interval* (a bucket-delta walk, not the
  cumulative quantile) plus a ``rate:<key>.count`` throughput series;
- two derived series: ``derived:hit_rate`` carries the per-interval
  global cache hit rate (hits delta over requests delta, weighted by
  requests so cross-worker merges recover the true global ratio), and
  ``derived:origin_offload`` the per-interval fraction of demanded
  bytes a cache hierarchy absorbed before the origin (from the
  ``hier_demand_bytes`` / ``hier_origin_bytes`` counters that
  :func:`repro.hierarchy.fold_hierarchy_metrics` maintains, weighted
  by demand bytes for the same merge-exactness).

Memory is constant by construction: every :class:`Series` is a ring
buffer of at most ``capacity`` points (:data:`DEFAULT_CAPACITY` by
default) and the set of series is bounded by the registry's metric-key
cardinality.  Like registries, recorders from different workers
:meth:`merge <TimeSeriesRecorder.merge>`: points are keyed by *slot*
(sample time rounded to the sampling interval), so two workers sampling
on the same cadence land their points in the same slots and the
combination is associative and commutative — sums add, means combine as
weighted means, maxima take the max.  (Associativity is exact while the
merged history fits in ``capacity`` points; beyond that the ring drops
the oldest slots, so pathologically disjoint histories can truncate
differently depending on grouping.)
"""

from __future__ import annotations

import json
import math
import threading
from collections import deque
from typing import Sequence

from repro.obs.metrics import (
    FIRST_BOUND,
    GROWTH,
    N_BUCKETS,
    MetricsRegistry,
    _format_key,
)

#: Default ring capacity per series — at the default 1 s cadence this is
#: ~8.5 minutes of history; at 100 ms it is ~51 s.
DEFAULT_CAPACITY = 512

#: Default sampling cadence in seconds.
DEFAULT_INTERVAL = 1.0

#: Gauges that are monotone totals republished by the server (they come
#: from the state actor's stats, not from counters) — the recorder
#: differentiates these into ``rate:`` series.
CUMULATIVE_GAUGES = frozenset({"jobs_observed", "site_requests", "site_hits"})

#: Aggregation modes a series can carry.  All three are associative and
#: commutative over (value, weight) points, which is what makes
#: cross-worker merges order-independent.
AGGREGATIONS = ("sum", "mean", "max")


def _delta_quantile(buckets: Sequence[int], q: float, count: int) -> float:
    """``q`` quantile (seconds) of a *delta* bucket array.

    Mirrors :meth:`LatencyHistogram.percentile` but runs over the
    per-interval bucket differences, so the answer reflects only the
    observations that landed in the interval.
    """
    if count <= 0:
        return 0.0
    rank = max(q * count, 0.5)
    seen = 0
    for i, n in enumerate(buckets):
        seen += n
        if seen >= rank:
            return FIRST_BOUND * GROWTH ** min(i, N_BUCKETS)
    return FIRST_BOUND * GROWTH**N_BUCKETS


class Series:
    """One named ring-buffered time series of (slot, value, weight) points.

    ``slot = round(t / interval)`` aligns samples from different workers
    onto a shared grid; the canonical timestamp of a point is
    ``slot * interval``.  ``agg`` picks how same-slot points combine:

    - ``"sum"`` — values add (rates, throughput);
    - ``"mean"`` — weighted mean (quantiles, hit rates);
    - ``"max"`` — pointwise maximum.
    """

    __slots__ = ("name", "agg", "interval", "capacity", "_points")

    def __init__(
        self,
        name: str,
        agg: str = "sum",
        *,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if agg not in AGGREGATIONS:
            raise ValueError(f"unknown aggregation {agg!r} (want one of {AGGREGATIONS})")
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.agg = agg
        self.interval = float(interval)
        self.capacity = int(capacity)
        # Ring of [slot, acc, weight]; acc is the value sum ("sum"/"mean")
        # or the running max ("max").  maxlen enforces constant memory.
        self._points: deque[list] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._points)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add(self, t: float, value: float, weight: float = 1.0) -> None:
        """Record ``value`` at time ``t`` (seconds on the sampling clock)."""
        if weight <= 0:
            return
        slot = round(t / self.interval)
        points = self._points
        if points and slot < points[-1][0]:
            # Late sample (clock jitter, out-of-order replay): combine
            # into its slot, or insert in order — the ring must stay
            # slot-sorted or merges stop being order-independent.
            for i in range(len(points) - 1, -1, -1):
                if points[i][0] == slot:
                    self._combine(points[i], value, weight)
                    return
                if points[i][0] < slot:
                    self._insert(i + 1, slot, value, weight)
                    return
            self._insert(0, slot, value, weight)
            return
        if points and points[-1][0] == slot:
            self._combine(points[-1], value, weight)
            return
        points.append([slot, value if self.agg != "mean" else value * weight, weight])

    def _insert(self, index: int, slot: int, value: float, weight: float) -> None:
        if len(self._points) == self.capacity:
            if index == 0:
                return  # older than everything the ring retains
            self._points.popleft()
            index -= 1
        self._points.insert(
            index, [slot, value if self.agg != "mean" else value * weight, weight]
        )

    def _combine(self, point: list, value: float, weight: float) -> None:
        if self.agg == "sum":
            point[1] += value
        elif self.agg == "mean":
            point[1] += value * weight
        else:  # max
            point[1] = max(point[1], value)
        point[2] += weight

    def _resolve(self, acc: float, weight: float) -> float:
        if self.agg == "mean":
            return acc / weight if weight > 0 else 0.0
        return acc

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def points(self) -> list[tuple[int, float, float]]:
        """Oldest-first ``(slot, value, weight)`` with values resolved."""
        return [(s, self._resolve(a, w), w) for s, a, w in self._points]

    def values(self) -> list[float]:
        return [self._resolve(a, w) for _, a, w in self._points]

    def times(self) -> list[float]:
        """Canonical timestamps (``slot * interval``), oldest first."""
        return [s * self.interval for s, _, _ in self._points]

    def latest(self) -> tuple[int, float, float] | None:
        if not self._points:
            return None
        s, a, w = self._points[-1]
        return (s, self._resolve(a, w), w)

    def ewma(self, alpha: float = 0.3) -> list[float]:
        """Exponentially smoothed values, oldest first (same length)."""
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        out: list[float] = []
        smoothed: float | None = None
        for v in self.values():
            smoothed = v if smoothed is None else alpha * v + (1 - alpha) * smoothed
            out.append(smoothed)
        return out

    def window(self, n: int) -> dict:
        """Aggregate of the last ``n`` points: count/mean/min/max/last."""
        if n < 1:
            raise ValueError(f"window must be >= 1, got {n}")
        tail = self.values()[-n:]
        if not tail:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "last": 0.0}
        return {
            "count": len(tail),
            "mean": sum(tail) / len(tail),
            "min": min(tail),
            "max": max(tail),
            "last": tail[-1],
        }

    # ------------------------------------------------------------------
    # combination / serialization
    # ------------------------------------------------------------------
    def merge(self, other: "Series") -> "Series":
        """Fold ``other`` into this series, slot-aligned (in place).

        Raises :class:`ValueError` on interval or aggregation mismatch —
        slots from different cadences do not share a grid.
        """
        if other.agg != self.agg:
            raise ValueError(
                f"cannot merge series {self.name!r}: agg {self.agg!r} != {other.agg!r}"
            )
        if not math.isclose(other.interval, self.interval, rel_tol=1e-9):
            raise ValueError(
                f"cannot merge series {self.name!r}: interval "
                f"{self.interval} != {other.interval}"
            )
        if not other._points:
            return self
        merged: dict[int, list] = {s: [s, a, w] for s, a, w in self._points}
        for s, a, w in other._points:
            mine = merged.get(s)
            if mine is None:
                merged[s] = [s, a, w]
            elif self.agg == "max":
                mine[1] = max(mine[1], a)
                mine[2] += w
            else:  # sum and mean both accumulate the raw acc
                mine[1] += a
                mine[2] += w
        self._points = deque(
            (merged[s] for s in sorted(merged)[-self.capacity:]),
            maxlen=self.capacity,
        )
        return self

    def state_dict(self) -> dict:
        """JSON-safe full-fidelity form (round-trips via :meth:`from_state_dict`)."""
        return {
            "name": self.name,
            "agg": self.agg,
            "interval": self.interval,
            "capacity": self.capacity,
            "points": [[s, a, w] for s, a, w in self._points],
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "Series":
        series = cls(
            state["name"],
            state.get("agg", "sum"),
            interval=float(state.get("interval", DEFAULT_INTERVAL)),
            capacity=int(state.get("capacity", DEFAULT_CAPACITY)),
        )
        for s, a, w in state.get("points", []):
            series._points.append([int(s), float(a), float(w)])
        return series


class TimeSeriesRecorder:
    """Samples a :class:`MetricsRegistry` into ring-buffered series.

    Thread-safe for the single-sampler / many-reader pattern the daemon
    uses (one asyncio task sampling, protocol handlers reading).  Memory
    is bounded by ``number of metric keys x capacity`` points regardless
    of how long the process runs.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        *,
        capacity: int = DEFAULT_CAPACITY,
        quantiles: Sequence[float] = (0.5, 0.99),
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.quantiles = tuple(quantiles)
        self.samples = 0
        self._series: dict[str, Series] = {}
        self._last_time: float | None = None
        self._last_counters: dict = {}
        self._last_gauges: dict = {}
        self._last_buckets: dict = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # series access
    # ------------------------------------------------------------------
    def series(self, name: str, agg: str = "sum") -> Series:
        """Get or create the series called ``name``."""
        existing = self._series.get(name)
        if existing is None:
            existing = self._series[name] = Series(
                name, agg, interval=self.interval, capacity=self.capacity
            )
        return existing

    def get(self, name: str) -> Series | None:
        return self._series.get(name)

    def names(self) -> list[str]:
        return sorted(self._series)

    def matching(self, prefix: str) -> list[Series]:
        """All series whose name starts with ``prefix``, name-sorted."""
        return [self._series[n] for n in sorted(self._series) if n.startswith(prefix)]

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, registry: MetricsRegistry, now: float) -> None:
        """Take one sample of ``registry`` at time ``now``.

        The first call only establishes delta baselines (plus gauge
        levels); rates appear from the second call on.
        """
        with self._lock:
            self._sample_locked(registry, now)

    def _sample_locked(self, registry: MetricsRegistry, now: float) -> None:
        first = self._last_time is None
        dt = 0.0 if first else now - self._last_time
        emit = not first and dt > 0

        counters = dict(registry._counters)
        gauges = dict(registry._gauges)

        hier_demand_delta = 0.0
        hier_origin_delta = 0.0
        if emit:
            for key, value in counters.items():
                delta = value - self._last_counters.get(key, 0)
                if delta < 0:  # registry replaced/reset
                    delta = value
                self.series(f"rate:{_format_key(key)}").add(now, delta / dt)
                if key[0] == "hier_demand_bytes":
                    hier_demand_delta += delta
                elif key[0] == "hier_origin_bytes":
                    hier_origin_delta += delta
        if emit and hier_demand_delta > 0:
            self.series("derived:origin_offload", "mean").add(
                now,
                1.0 - hier_origin_delta / hier_demand_delta,
                weight=hier_demand_delta,
            )

        hits_delta = 0.0
        requests_delta = 0.0
        for key, value in gauges.items():
            name = key[0]
            if name in CUMULATIVE_GAUGES:
                if emit:
                    delta = value - self._last_gauges.get(key, 0.0)
                    if delta < 0:
                        delta = value
                    self.series(f"rate:{_format_key(key)}").add(now, delta / dt)
                    if name == "site_hits":
                        hits_delta += delta
                    elif name == "site_requests":
                        requests_delta += delta
            else:
                agg = "mean" if name.endswith("_rate") else "sum"
                self.series(f"gauge:{_format_key(key)}", agg).add(now, value)

        if emit and requests_delta > 0:
            self.series("derived:hit_rate", "mean").add(
                now, hits_delta / requests_delta, weight=requests_delta
            )

        for key, hist in registry._histograms.items():
            last = self._last_buckets.get(key)
            buckets = hist._buckets
            if emit:
                if last is None:
                    delta_buckets = list(buckets)
                else:
                    delta_buckets = [b - p for b, p in zip(buckets, last)]
                    if any(d < 0 for d in delta_buckets):
                        delta_buckets = list(buckets)
                dcount = sum(delta_buckets)
                self.series(f"rate:{_format_key(key)}.count").add(now, dcount / dt)
                if dcount > 0:
                    for q in self.quantiles:
                        self.series(f"p{int(round(q * 100))}:{_format_key(key)}", "mean").add(
                            now,
                            _delta_quantile(delta_buckets, q, dcount),
                            weight=dcount,
                        )
            self._last_buckets[key] = list(buckets)

        self._last_counters = counters
        self._last_gauges = gauges
        self._last_time = now
        if emit:
            self.samples += 1

    # ------------------------------------------------------------------
    # combination / serialization
    # ------------------------------------------------------------------
    def merge(self, *others: "TimeSeriesRecorder") -> "TimeSeriesRecorder":
        """Fold other recorders in, series by series (slot-aligned).

        All recorders must share the sampling interval; series present in
        only one side pass through unchanged.  Associative and
        commutative up to ring truncation (see module docstring).
        """
        with self._lock:
            for other in others:
                if not math.isclose(other.interval, self.interval, rel_tol=1e-9):
                    raise ValueError(
                        f"cannot merge recorders: interval {self.interval} "
                        f"!= {other.interval}"
                    )
                for name, series in other._series.items():
                    mine = self._series.get(name)
                    if mine is None:
                        self._series[name] = Series.from_state_dict(series.state_dict())
                    else:
                        mine.merge(series)
                self.samples += other.samples
        return self

    def state_dict(self) -> dict:
        with self._lock:
            return {
                "interval": self.interval,
                "capacity": self.capacity,
                "quantiles": list(self.quantiles),
                "samples": self.samples,
                "series": [
                    self._series[name].state_dict() for name in sorted(self._series)
                ],
            }

    @classmethod
    def from_state_dict(cls, state: dict) -> "TimeSeriesRecorder":
        recorder = cls(
            float(state.get("interval", DEFAULT_INTERVAL)),
            capacity=int(state.get("capacity", DEFAULT_CAPACITY)),
            quantiles=tuple(state.get("quantiles", (0.5, 0.99))),
        )
        recorder.samples = int(state.get("samples", 0))
        for series_state in state.get("series", []):
            series = Series.from_state_dict(series_state)
            recorder._series[series.name] = series
        return recorder

    def payload(self, last: int | None = None) -> dict:
        """The ``history`` protocol-op / admin-endpoint body.

        A superset of :meth:`state_dict` (so :meth:`from_state_dict`
        accepts it back); ``last`` caps the points returned per series
        without touching the ring itself.
        """
        payload = self.state_dict()
        if last is not None and last >= 1:
            for series_state in payload["series"]:
                series_state["points"] = series_state["points"][-last:]
        return payload

    def to_json(self, last: int | None = None) -> str:
        return json.dumps(self.payload(last))


__all__ = [
    "AGGREGATIONS",
    "CUMULATIVE_GAUGES",
    "DEFAULT_CAPACITY",
    "DEFAULT_INTERVAL",
    "Series",
    "TimeSeriesRecorder",
]
