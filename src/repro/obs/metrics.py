"""Metrics: labeled counters/gauges and log-bucketed latency histograms.

This is the single metrics vocabulary shared by the daemon, the cache
simulators and the experiment drivers (it originated in the service
package; the old ``repro.service.metrics`` import path is gone).

The daemon is the hot path, so recording must be O(1) and allocation-free:
counters are plain ints and latencies land in a fixed geometric bucket
array (20% resolution from 1 µs to ~17 minutes), from which percentiles
are answered by a cumulative walk.  Everything is exposed three ways — the
``stats`` protocol query returns :meth:`MetricsRegistry.snapshot`, the
``metrics`` query (and the optional HTTP endpoint) return
:meth:`MetricsRegistry.expose` in Prometheus text format, and the server
periodically emits :meth:`MetricsRegistry.format_log_line`.

Registries from parallel workers (one per process or per sweep shard)
combine with :meth:`MetricsRegistry.merge`: counters add, gauges add,
histograms merge bucket-wise — so a fan-out run reports one registry.
"""

from __future__ import annotations

import math
import time
from typing import Iterable

#: Bucket geometry: bucket ``i`` holds latencies in
#: ``[FIRST_BOUND * GROWTH**(i-1), FIRST_BOUND * GROWTH**i)`` seconds.
FIRST_BOUND = 1e-6
GROWTH = 1.2
N_BUCKETS = 128  # upper bound of last finite bucket ≈ 1e-6 * 1.2**128 ≈ 3.8 h

#: Content type of :meth:`MetricsRegistry.expose` output.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: A metric key: bare name plus a canonical (sorted) label tuple.
_Key = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def _format_key(key: _Key) -> str:
    """Human-readable form used in snapshots: ``name{k="v",...}``."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def _prom_name(name: str) -> str:
    """Sanitize a registry name into a Prometheus metric name."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    escaped = (
        (k, v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n"))
        for k, v in labels
    )
    return "{" + ",".join(f'{k}="{v}"' for k, v in escaped) + "}"


def _prom_number(value: float) -> str:
    """Render a sample value the way Prometheus parsers expect."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class LatencyHistogram:
    """Fixed-size geometric histogram of durations in seconds."""

    __slots__ = ("_buckets", "count", "total", "max", "_min")

    def __init__(self) -> None:
        self._buckets = [0] * (N_BUCKETS + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._min = math.inf

    def record(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        if seconds < FIRST_BOUND:
            index = 0
        else:
            index = min(
                N_BUCKETS,
                1 + int(math.log(seconds / FIRST_BOUND) / math.log(GROWTH)),
            )
        self._buckets[index] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if seconds < self._min:
            self._min = seconds

    def record_many(self, seconds: float, count: int) -> None:
        """Record ``count`` identical observations with one bucket update.

        Equivalent to calling :meth:`record` ``count`` times — the
        coalesced ingest path observes one amortized per-request duration
        for a whole writer batch without paying one call per request.
        """
        if count <= 0:
            return
        if seconds < 0:
            seconds = 0.0
        if seconds < FIRST_BOUND:
            index = 0
        else:
            index = min(
                N_BUCKETS,
                1 + int(math.log(seconds / FIRST_BOUND) / math.log(GROWTH)),
            )
        self._buckets[index] += count
        self.count += count
        self.total += seconds * count
        if seconds > self.max:
            self.max = seconds
        if seconds < self._min:
            self._min = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        """Smallest recorded duration (0.0 when empty)."""
        return self._min if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-resolution ``q`` quantile in seconds.

        ``q`` in [0, 1].  Resolution is one bucket (±20%), which is ample
        for p50/p99 reporting; returns 0.0 when empty.  The answer is the
        upper bound of the bucket holding the quantile rank, clamped into
        ``[min, max]`` so reported percentiles never fall outside the
        observed range; ``q=0`` reports the first non-empty bucket (the
        latency floor), not the absolute bucket-0 bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # A zero rank would be satisfied before any observation is seen
        # (the first, possibly empty, bucket); any rank in (0, 1] walks
        # to the first non-empty bucket instead.
        rank = max(q * self.count, 0.5)
        seen = 0
        bound = self.max
        for i, n in enumerate(self._buckets):
            seen += n
            if seen >= rank:
                bound = self.max if i >= N_BUCKETS else FIRST_BOUND * GROWTH**i
                break
        return min(max(bound, self.min), self.max)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s observations into this histogram (in place)."""
        buckets = self._buckets
        for i, n in enumerate(other._buckets):
            buckets[i] += n
        self.count += other.count
        self.total += other.total
        if other.max > self.max:
            self.max = other.max
        if other._min < self._min:
            self._min = other._min
        return self

    def state_dict(self) -> dict:
        """Full-fidelity serializable form (sparse buckets; JSON-safe).

        Unlike :meth:`snapshot` (which reduces to percentiles), this
        round-trips through :meth:`from_state_dict` without losing bucket
        counts — what lets per-process histograms travel across process
        or HTTP boundaries and still :meth:`merge` exactly.
        """
        return {
            "buckets": {
                str(i): n for i, n in enumerate(self._buckets) if n
            },
            "count": self.count,
            "total": self.total,
            "max": self.max,
            "min": self._min if self.count else None,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`state_dict` output.

        Tolerates a missing/invalid ``min`` on a non-empty payload (older
        producers omitted it): the floor is re-derived from the first
        non-empty bucket's lower bound, so ``min``/``percentile`` never
        leak ``inf`` into snapshots or exposition.
        """
        hist = cls()
        for index, n in state.get("buckets", {}).items():
            hist._buckets[int(index)] = int(n)
        hist.count = int(state["count"])
        hist.total = float(state["total"])
        hist.max = float(state["max"])
        raw_min = state.get("min")
        if raw_min is not None and math.isfinite(float(raw_min)):
            hist._min = float(raw_min)
        elif hist.count:
            hist._min = hist._derive_min()
        else:
            hist._min = math.inf
        return hist

    def _derive_min(self) -> float:
        """Lower bound of the first non-empty bucket (a floor estimate)."""
        for i, n in enumerate(self._buckets):
            if n:
                bound = 0.0 if i == 0 else FIRST_BOUND * GROWTH ** (i - 1)
                return min(bound, self.max)
        return 0.0

    def bucket_bounds(self) -> Iterable[tuple[float, int]]:
        """Yield ``(upper_bound_seconds, cumulative_count)`` per non-empty
        bucket, ending with ``(inf, count)`` — Prometheus histogram shape.
        """
        seen = 0
        for i, n in enumerate(self._buckets):
            if n == 0:
                continue
            seen += n
            bound = math.inf if i >= N_BUCKETS else FIRST_BOUND * GROWTH**i
            if bound != math.inf:
                yield (bound, seen)
        yield (math.inf, self.count)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": self.mean * 1e3,
            "min_ms": self.min * 1e3,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p90_ms": self.percentile(0.90) * 1e3,
            "p99_ms": self.percentile(0.99) * 1e3,
            "max_ms": self.max * 1e3,
        }


class MetricsRegistry:
    """Named (optionally labeled) counters, gauges and latency histograms.

    Labels are passed as keyword arguments and become part of the metric
    identity::

        registry.inc("requests")                    # unlabeled, as before
        registry.inc("site_requests", site=3)       # labeled counter
        registry.set_gauge("site_hit_rate", 0.91, site=3)
        registry.observe("op.ingest", 0.0012)
    """

    def __init__(self, clock=time.monotonic, namespace: str = "repro") -> None:
        self._clock = clock
        self._started = clock()
        self.namespace = namespace
        self._counters: dict[_Key, int] = {}
        self._gauges: dict[_Key, float] = {}
        self._histograms: dict[_Key, LatencyHistogram] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def inc(self, name: str, delta: int = 1, **labels) -> None:
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + delta

    def get(self, name: str, **labels) -> int:
        return self._counters.get(_key(name, labels), 0)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._gauges[_key(name, labels)] = float(value)

    def gauge(self, name: str, **labels) -> float:
        return self._gauges.get(_key(name, labels), 0.0)

    def histogram(self, name: str, **labels) -> LatencyHistogram:
        key = _key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = LatencyHistogram()
        return hist

    def observe(self, name: str, seconds: float, **labels) -> None:
        self.histogram(name, **labels).record(seconds)

    def observe_many(
        self, name: str, seconds: float, count: int, **labels
    ) -> None:
        """Record ``count`` identical observations in one call."""
        self.histogram(name, **labels).record_many(seconds, count)

    @property
    def uptime_seconds(self) -> float:
        return self._clock() - self._started

    # ------------------------------------------------------------------
    # combination
    # ------------------------------------------------------------------
    def merge(self, *others: "MetricsRegistry") -> "MetricsRegistry":
        """Fold other registries into this one (counters and gauges add,
        histograms merge bucket-wise); returns ``self`` for chaining.

        This is how parallel workers — one registry per process or per
        sweep shard — combine into a single report.  Uptime stays this
        registry's own.
        """
        for other in others:
            for key, value in other._counters.items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, value in other._gauges.items():
                self._gauges[key] = self._gauges.get(key, 0.0) + value
            for key, hist in other._histograms.items():
                name, labels = key
                self.histogram(name, **dict(labels)).merge(hist)
        return self

    # ------------------------------------------------------------------
    # serialization (cross-process / cross-worker aggregation)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full-fidelity JSON-safe form of every metric in the registry.

        This is the cross-worker aggregation wire format: each worker of
        a sharded daemon serves its registry's ``state_dict`` over its
        admin endpoint, and an aggregator rebuilds them with
        :meth:`from_state_dict` and folds them together with
        :meth:`merge` — bucket-exact, unlike merging rendered
        percentiles.
        """
        return {
            "namespace": self.namespace,
            "uptime_seconds": self.uptime_seconds,
            "counters": [
                [name, list(labels), value]
                for (name, labels), value in sorted(self._counters.items())
            ],
            "gauges": [
                [name, list(labels), value]
                for (name, labels), value in sorted(self._gauges.items())
            ],
            "histograms": [
                [name, list(labels), hist.state_dict()]
                for (name, labels), hist in sorted(self._histograms.items())
            ],
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`state_dict` output.

        Uptime restarts at zero (it is a property of the local clock, not
        of the serialized observations).
        """
        registry = cls(namespace=state.get("namespace", "repro"))
        for name, labels, value in state.get("counters", []):
            registry._counters[(name, tuple(tuple(kv) for kv in labels))] = int(
                value
            )
        for name, labels, value in state.get("gauges", []):
            registry._gauges[(name, tuple(tuple(kv) for kv in labels))] = float(
                value
            )
        for name, labels, hist_state in state.get("histograms", []):
            registry._histograms[
                (name, tuple(tuple(kv) for kv in labels))
            ] = LatencyHistogram.from_state_dict(hist_state)
        return registry

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        snap = {
            "uptime_seconds": self.uptime_seconds,
            "counters": {
                _format_key(key): value
                for key, value in sorted(self._counters.items())
            },
            "latency": {
                _format_key(key): hist.snapshot()
                for key, hist in sorted(self._histograms.items())
            },
        }
        if self._gauges:
            snap["gauges"] = {
                _format_key(key): value
                for key, value in sorted(self._gauges.items())
            }
        return snap

    def expose(self) -> str:
        """Render the registry in Prometheus text exposition format.

        Counters become ``<ns>_<name>_total``, gauges ``<ns>_<name>``,
        histograms ``<ns>_<name>_seconds`` with cumulative ``_bucket``
        lines (only non-empty buckets plus ``+Inf`` are emitted — the
        cumulative form stays valid and the payload stays small).
        """
        ns = self.namespace
        lines: list[str] = []
        lines.append(f"# HELP {ns}_uptime_seconds Seconds since registry creation.")
        lines.append(f"# TYPE {ns}_uptime_seconds gauge")
        lines.append(f"{ns}_uptime_seconds {_prom_number(self.uptime_seconds)}")

        by_name: dict[str, list[_Key]] = {}
        for key in self._counters:
            by_name.setdefault(key[0], []).append(key)
        for base in sorted(by_name):
            metric = f"{ns}_{_prom_name(base)}_total"
            lines.append(f"# TYPE {metric} counter")
            for key in sorted(by_name[base]):
                lines.append(
                    f"{metric}{_prom_labels(key[1])} "
                    f"{_prom_number(self._counters[key])}"
                )

        by_name = {}
        for key in self._gauges:
            by_name.setdefault(key[0], []).append(key)
        for base in sorted(by_name):
            metric = f"{ns}_{_prom_name(base)}"
            lines.append(f"# TYPE {metric} gauge")
            for key in sorted(by_name[base]):
                lines.append(
                    f"{metric}{_prom_labels(key[1])} "
                    f"{_prom_number(self._gauges[key])}"
                )

        by_name = {}
        for key in self._histograms:
            by_name.setdefault(key[0], []).append(key)
        for base in sorted(by_name):
            metric = f"{ns}_{_prom_name(base)}_seconds"
            lines.append(f"# TYPE {metric} histogram")
            for key in sorted(by_name[base]):
                hist = self._histograms[key]
                labels = key[1]
                for bound, cumulative in hist.bucket_bounds():
                    le = (("le", _prom_number(bound)),)
                    lines.append(
                        f"{metric}_bucket{_prom_labels(labels + le)} {cumulative}"
                    )
                lines.append(
                    f"{metric}_sum{_prom_labels(labels)} {_prom_number(hist.total)}"
                )
                lines.append(f"{metric}_count{_prom_labels(labels)} {hist.count}")

        return "\n".join(lines) + "\n"

    def format_log_line(self) -> str:
        """One-line operational summary for the periodic server log."""
        parts = [f"up={self.uptime_seconds:.0f}s"]
        parts += [
            f"{_format_key(key)}={value}"
            for key, value in sorted(self._counters.items())
        ]
        for key, hist in sorted(self._histograms.items()):
            if hist.count:
                name = _format_key(key)
                parts.append(
                    f"{name}.p50={hist.percentile(0.5) * 1e3:.2f}ms"
                    f" {name}.p99={hist.percentile(0.99) * 1e3:.2f}ms"
                )
        return "metrics " + " ".join(parts)
