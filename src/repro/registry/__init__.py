"""Declarative, capability-tagged policy registry.

Every replacement policy in the repository is registered here as a
:class:`PolicySpec` — name, factory, parameter defaults, and capability
flags (``needs_filecules``, ``needs_trace``, ``is_offline_optimal``) —
so policy selection is *data*, not code:

* experiment drivers declare policy tables as tuples of spec strings;
* ``sweep(jobs=N)`` ships spec strings (plain picklable data) to worker
  processes instead of closures, which makes dispatch spawn-safe;
* ``repro-serve --advisor-policy <spec>`` configures the online
  service's per-site cache advisors from the same names;
* ``repro-experiments list-policies`` prints the whole catalog.

Spec strings use a URL-query-ish syntax::

    >>> from repro import registry
    >>> bound = registry.parse("filecule-lru?intra_job_hits=false")
    >>> str(bound)
    'filecule-lru?intra_job_hits=false'
    >>> registry.parse(str(bound)) == bound
    True

and :func:`build` turns one into a live policy instance, given the
shared resources its flags demand::

    policy = registry.build("filecule-lru", capacity, partition=partition)

Replication *placement* strategies (``is_placement`` specs, registered
lazily by :mod:`repro.replication`) share the same namespace and wire
format but are listed by :func:`placement_names` and built by
:func:`build_placement` — so experiment drivers declare replication
strategy tables as spec strings exactly like policy tables::

    strategy = registry.build_placement("filecule-rank")

See ``docs/ARCHITECTURE.md`` for where the registry sits in the layer
map and why it is the only module that pairs policy classes with
construction recipes.
"""

from repro.registry.spec import (
    FLAG_NAMES,
    BoundSpec,
    PolicyResourceError,
    PolicySpec,
    PolicySpecError,
    UnknownPolicyError,
    build,
    build_placement,
    get_spec,
    list_placement_specs,
    list_specs,
    parse,
    placement_names,
    policy_names,
    register_placement,
    register_policy,
    service_policy_names,
)

# Importing the builtin table populates the registry as a side effect.
from repro.registry import builtin as _builtin  # noqa: F401  (registration)

__all__ = [
    "FLAG_NAMES",
    "BoundSpec",
    "PolicyResourceError",
    "PolicySpec",
    "PolicySpecError",
    "UnknownPolicyError",
    "build",
    "build_placement",
    "get_spec",
    "list_placement_specs",
    "list_specs",
    "parse",
    "placement_names",
    "policy_names",
    "register_placement",
    "register_policy",
    "service_policy_names",
]
