"""The repository's built-in policy specs — every replacement policy
shipped under :mod:`repro.cache`, registered once, by name.

This module is the *only* place that pairs policy classes with their
construction recipe; everything else (experiment drivers, the parallel
sweep workers, the online service's advisors, benchmarks) selects
policies through :func:`repro.registry.build` and friends.  Policy
classes are imported from their defining modules (never the
:mod:`repro.cache` package attributes) so the registry can load while
the cache package is still initializing.
"""

from __future__ import annotations

from repro.cache.arc import AdaptiveReplacementCache
from repro.cache.belady import BeladyMIN, FileculeBeladyMIN
from repro.cache.bundle import FileBundleCache
from repro.cache.fifo import FileFIFO
from repro.cache.filecule_lru import FileculeLRU
from repro.cache.filecule_variants import FileculeGDS, FileculeLFU
from repro.cache.frequency import FileLFU
from repro.cache.gds import GreedyDualSize, Landlord
from repro.cache.lru import FileLRU
from repro.cache.prefetch import GroupPrefetchLRU
from repro.cache.size import LargestFirst
from repro.cache.working_set import WorkingSetPrefetchLRU
from repro.registry.spec import register_policy

# ----------------------------------------------------------------------
# single-file policies (no shared resources)
# ----------------------------------------------------------------------


@register_policy(
    "file-lru",
    summary="LRU at file granularity (the paper's baseline)",
    supports_batch=True,
    aliases=("lru",),
)
def _file_lru(capacity, *, trace, partition):
    return FileLRU(capacity)


@register_policy(
    "file-fifo",
    summary="FIFO at file granularity",
    supports_batch=True,
    aliases=("fifo",),
)
def _file_fifo(capacity, *, trace, partition):
    return FileFIFO(capacity)


@register_policy(
    "file-lfu",
    summary="perfect LFU at file granularity",
    aliases=("lfu",),
)
def _file_lfu(capacity, *, trace, partition):
    return FileLFU(capacity)


@register_policy(
    "largest-first",
    summary="SIZE: evict the largest resident file first",
    aliases=("size",),
)
def _largest_first(capacity, *, trace, partition):
    return LargestFirst(capacity)


@register_policy(
    "greedy-dual-size",
    summary="Greedy-Dual-Size with uniform miss cost",
    aliases=("gds",),
)
def _greedy_dual_size(capacity, *, trace, partition):
    return GreedyDualSize(capacity)


@register_policy(
    "landlord",
    summary="Landlord: Greedy-Dual-Size with byte-proportional cost",
)
def _landlord(capacity, *, trace, partition):
    return Landlord(capacity)


@register_policy(
    "arc",
    summary="Adaptive Replacement Cache (recency/frequency balancing)",
)
def _arc(capacity, *, trace, partition):
    return AdaptiveReplacementCache(capacity)


@register_policy(
    "file-bundle",
    summary="Otoo-style bundle-utility eviction, no prefetching",
)
def _file_bundle(capacity, *, trace, partition):
    return FileBundleCache(capacity)


# ----------------------------------------------------------------------
# grouping policies needing trace columns
# ----------------------------------------------------------------------


@register_policy(
    "working-set-prefetch",
    summary="learned co-access groups with bounded prefetching",
    defaults={"max_prefetch_fraction": 0.5, "max_group_size": 4096},
    needs_trace=True,
)
def _working_set_prefetch(
    capacity, *, trace, partition, max_prefetch_fraction, max_group_size
):
    return WorkingSetPrefetchLRU(
        capacity,
        trace.file_sizes,
        max_prefetch_fraction=max_prefetch_fraction,
        max_group_size=max_group_size,
    )


@register_policy(
    "group-prefetch-lru",
    summary="LRU prefetching whole datasets-of-birth groups",
    defaults={"max_prefetch_fraction": 0.5},
    needs_trace=True,
)
def _group_prefetch_lru(capacity, *, trace, partition, max_prefetch_fraction):
    return GroupPrefetchLRU(
        capacity,
        trace.file_datasets.astype("int64"),
        trace.file_sizes,
        max_prefetch_fraction=max_prefetch_fraction,
    )


# ----------------------------------------------------------------------
# filecule-granularity policies
# ----------------------------------------------------------------------


@register_policy(
    "filecule-lru",
    summary="LRU over whole filecules (the paper's contribution)",
    defaults={"intra_job_hits": True},
    needs_filecules=True,
    supports_batch=True,
)
def _filecule_lru(capacity, *, trace, partition, intra_job_hits):
    return FileculeLRU(capacity, partition, intra_job_hits=intra_job_hits)


@register_policy(
    "filecule-lfu",
    summary="LFU over whole filecules",
    needs_filecules=True,
)
def _filecule_lfu(capacity, *, trace, partition):
    return FileculeLFU(capacity, partition)


@register_policy(
    "filecule-gds",
    summary="Greedy-Dual-Size over whole filecules",
    defaults={"cost_mode": "files"},
    needs_filecules=True,
)
def _filecule_gds(capacity, *, trace, partition, cost_mode):
    return FileculeGDS(capacity, partition, cost_mode=cost_mode)


# ----------------------------------------------------------------------
# clairvoyant offline bounds
# ----------------------------------------------------------------------


@register_policy(
    "file-belady-min",
    summary="Belady MIN at file granularity (clairvoyant bound)",
    needs_trace=True,
    is_offline_optimal=True,
)
def _file_belady_min(capacity, *, trace, partition):
    return BeladyMIN(capacity, trace)


@register_policy(
    "filecule-belady-min",
    summary="Belady MIN at filecule granularity (clairvoyant bound)",
    needs_trace=True,
    needs_filecules=True,
    is_offline_optimal=True,
)
def _filecule_belady_min(capacity, *, trace, partition):
    return FileculeBeladyMIN(capacity, trace, partition)
