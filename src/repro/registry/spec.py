"""Policy-spec data model and the registry's lookup/parse/build core.

A :class:`PolicySpec` describes one replacement policy *declaratively*:
its canonical name, a factory, the tunable parameters with their
defaults, and capability flags saying which shared resources the factory
needs (``needs_filecules`` → a :class:`~repro.core.filecule.FileculePartition`,
``needs_trace`` → the replayed :class:`~repro.traces.trace.Trace`) or
whether it is a clairvoyant offline bound (``is_offline_optimal``).

A :class:`BoundSpec` is the *picklable selection* of a spec: canonical
name plus explicit parameter overrides.  Its string form is the
URL-query-ish ``"name?param=value&other=value"`` syntax accepted
everywhere a policy can be chosen (``repro-serve --advisor-policy``,
``sweep`` policy tables, parallel worker dispatch), and
``parse(str(bound)) == bound`` is guaranteed (and property-tested): the
string is the canonical wire format that crosses process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

from repro.cache.base import ReplacementPolicy

#: Ordered capability-flag names, as exposed by :attr:`PolicySpec.flags`.
FLAG_NAMES = (
    "needs_filecules",
    "needs_trace",
    "is_offline_optimal",
    "supports_batch",
)


class UnknownPolicyError(ValueError):
    """No registered spec matches the requested policy name."""


class PolicySpecError(ValueError):
    """A spec string or parameter set is malformed for its policy."""


class PolicyResourceError(ValueError):
    """A policy needs a resource (trace/partition) the caller didn't pass."""


@dataclass(frozen=True)
class PolicySpec:
    """Declarative description of one registered replacement policy.

    ``factory`` is called as ``factory(capacity, trace=..., partition=...,
    **params)`` and must return a fresh
    :class:`~repro.cache.base.ReplacementPolicy`.  ``defaults`` is the
    complete parameter schema: a parameter unknown to ``defaults`` is
    rejected at parse/build time, and each default's Python type drives
    the string-value coercion in :func:`parse`.
    """

    name: str
    factory: Callable[..., ReplacementPolicy] = field(repr=False)
    summary: str = ""
    defaults: Mapping[str, object] = field(default_factory=dict)
    needs_filecules: bool = False
    needs_trace: bool = False
    is_offline_optimal: bool = False
    supports_batch: bool = False
    aliases: tuple[str, ...] = ()

    @property
    def flags(self) -> tuple[str, ...]:
        """The active capability-flag names, in :data:`FLAG_NAMES` order."""
        return tuple(f for f in FLAG_NAMES if getattr(self, f))


@dataclass(frozen=True)
class BoundSpec:
    """A picklable (name, explicit-params) policy selection.

    ``params`` holds only the caller's overrides (sorted by key);
    defaults stay implicit so two ways of spelling the same choice
    compare equal and render the same string.
    """

    name: str
    params: tuple[tuple[str, object], ...] = ()

    def __str__(self) -> str:
        if not self.params:
            return self.name
        query = "&".join(f"{k}={_format_value(v)}" for k, v in self.params)
        return f"{self.name}?{query}"


# ----------------------------------------------------------------------
# registry storage
# ----------------------------------------------------------------------

_SPECS: dict[str, PolicySpec] = {}
_ALIASES: dict[str, str] = {}  # alias -> canonical name


def register_policy(
    name: str,
    *,
    summary: str = "",
    defaults: Mapping[str, object] | None = None,
    needs_filecules: bool = False,
    needs_trace: bool = False,
    is_offline_optimal: bool = False,
    supports_batch: bool = False,
    aliases: tuple[str, ...] = (),
) -> Callable[[Callable[..., ReplacementPolicy]], Callable[..., ReplacementPolicy]]:
    """Decorator registering ``factory`` under ``name`` (plus aliases)."""

    def deco(factory: Callable[..., ReplacementPolicy]):
        if name in _SPECS or name in _ALIASES:
            raise ValueError(f"duplicate policy spec name {name!r}")
        spec = PolicySpec(
            name=name,
            factory=factory,
            summary=summary,
            defaults=dict(defaults or {}),
            needs_filecules=needs_filecules,
            needs_trace=needs_trace,
            is_offline_optimal=is_offline_optimal,
            supports_batch=supports_batch,
            aliases=tuple(aliases),
        )
        _SPECS[name] = spec
        for alias in spec.aliases:
            if alias in _SPECS or alias in _ALIASES:
                raise ValueError(f"duplicate policy alias {alias!r}")
            _ALIASES[alias] = name
        return factory

    return deco


def list_specs() -> list[PolicySpec]:
    """Every registered spec, sorted by canonical name."""
    return [_SPECS[name] for name in sorted(_SPECS)]


def policy_names(*, include_aliases: bool = False) -> list[str]:
    names = list(_SPECS)
    if include_aliases:
        names.extend(_ALIASES)
    return sorted(names)


def get_spec(name: str) -> PolicySpec:
    """Look a spec up by canonical name or alias."""
    canonical = _ALIASES.get(name, name)
    try:
        return _SPECS[canonical]
    except KeyError:
        raise UnknownPolicyError(
            f"unknown policy {name!r}; known specs: "
            f"{', '.join(policy_names(include_aliases=True))}"
        ) from None


def service_policy_names(*, include_aliases: bool = True) -> list[str]:
    """Names usable as online service advisors (no offline resources)."""
    names = []
    for spec in list_specs():
        if spec.needs_filecules or spec.needs_trace:
            continue
        names.append(spec.name)
        if include_aliases:
            names.extend(spec.aliases)
    return sorted(names)


# ----------------------------------------------------------------------
# parse / format
# ----------------------------------------------------------------------

_TRUE = frozenset(("1", "true", "yes", "on"))
_FALSE = frozenset(("0", "false", "no", "off"))


def _format_value(value: object) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)


def _coerce_value(spec: PolicySpec, key: str, raw: str) -> object:
    try:
        default = spec.defaults[key]
    except KeyError:
        valid = ", ".join(sorted(spec.defaults)) or "<none>"
        raise PolicySpecError(
            f"policy {spec.name!r} has no parameter {key!r}; "
            f"valid parameters: {valid}"
        ) from None
    try:
        if isinstance(default, bool):
            lowered = raw.lower()
            if lowered in _TRUE:
                return True
            if lowered in _FALSE:
                return False
            raise ValueError(f"not a boolean: {raw!r}")
        if isinstance(default, int):
            return int(raw)
        if isinstance(default, float):
            return float(raw)
        return raw
    except ValueError as exc:
        raise PolicySpecError(
            f"bad value for {spec.name}?{key}: {exc}"
        ) from None


def parse(text: str | BoundSpec) -> BoundSpec:
    """Parse ``"name?param=value&..."`` into a canonical :class:`BoundSpec`.

    Aliases resolve to the canonical name, parameter values are coerced
    to the type of the spec's default, and parameters are sorted — so
    ``parse`` is a canonicalizer and ``parse(str(spec)) == spec`` holds
    for every parseable spec.
    """
    if isinstance(text, BoundSpec):
        get_spec(text.name)  # validate
        return text
    name, _, query = text.strip().partition("?")
    spec = get_spec(name)
    params: dict[str, object] = {}
    if query:
        for part in query.split("&"):
            if not part:
                continue
            key, sep, raw = part.partition("=")
            if not sep:
                raise PolicySpecError(
                    f"malformed spec {text!r}: expected param=value, "
                    f"got {part!r}"
                )
            params[key] = _coerce_value(spec, key, raw)
    return BoundSpec(name=spec.name, params=tuple(sorted(params.items())))


# ----------------------------------------------------------------------
# build
# ----------------------------------------------------------------------


def build(
    spec: str | BoundSpec,
    capacity: int,
    *,
    trace=None,
    partition=None,
    **params,
) -> ReplacementPolicy:
    """Construct a fresh policy instance from a spec, by name.

    ``trace``/``partition`` are the shared resources a capability-tagged
    spec may require; explicit ``**params`` override both the spec
    string's parameters and the registered defaults.
    """
    bound = parse(spec)
    policy_spec = get_spec(bound.name)
    merged = dict(policy_spec.defaults)
    merged.update(bound.params)
    for key, value in params.items():
        if key not in policy_spec.defaults:
            valid = ", ".join(sorted(policy_spec.defaults)) or "<none>"
            raise PolicySpecError(
                f"policy {policy_spec.name!r} has no parameter {key!r}; "
                f"valid parameters: {valid}"
            )
        merged[key] = value
    if policy_spec.needs_filecules and partition is None:
        raise PolicyResourceError(
            f"policy {policy_spec.name!r} needs a filecule partition; "
            f"pass partition=find_filecules(trace)"
        )
    if policy_spec.needs_trace and trace is None:
        raise PolicyResourceError(
            f"policy {policy_spec.name!r} needs the replayed trace; "
            f"pass trace=..."
        )
    return policy_spec.factory(
        int(capacity), trace=trace, partition=partition, **merged
    )
