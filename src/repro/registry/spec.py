"""Policy-spec data model and the registry's lookup/parse/build core.

A :class:`PolicySpec` describes one replacement policy *declaratively*:
its canonical name, a factory, the tunable parameters with their
defaults, and capability flags saying which shared resources the factory
needs (``needs_filecules`` → a :class:`~repro.core.filecule.FileculePartition`,
``needs_trace`` → the replayed :class:`~repro.traces.trace.Trace`) or
whether it is a clairvoyant offline bound (``is_offline_optimal``).

A :class:`BoundSpec` is the *picklable selection* of a spec: canonical
name plus explicit parameter overrides.  Its string form is the
URL-query-ish ``"name?param=value&other=value"`` syntax accepted
everywhere a policy can be chosen (``repro-serve --advisor-policy``,
``sweep`` policy tables, parallel worker dispatch), and
``parse(str(bound)) == bound`` is guaranteed (and property-tested): the
string is the canonical wire format that crosses process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping

from repro.cache.base import ReplacementPolicy

#: Ordered capability-flag names, as exposed by :attr:`PolicySpec.flags`.
#: New flags are appended, never reordered — consumers index by name but
#: serialized flag tuples must stay stable across versions.
FLAG_NAMES = (
    "needs_filecules",
    "needs_trace",
    "is_offline_optimal",
    "supports_batch",
    "is_placement",
    "needs_hierarchy",
)


class UnknownPolicyError(ValueError):
    """No registered spec matches the requested policy name."""


class PolicySpecError(ValueError):
    """A spec string or parameter set is malformed for its policy."""


class PolicyResourceError(ValueError):
    """A policy needs a resource (trace/partition) the caller didn't pass."""


@dataclass(frozen=True)
class PolicySpec:
    """Declarative description of one registered replacement policy.

    ``factory`` is called as ``factory(capacity, trace=..., partition=...,
    **params)`` and must return a fresh
    :class:`~repro.cache.base.ReplacementPolicy`.  ``defaults`` is the
    complete parameter schema: a parameter unknown to ``defaults`` is
    rejected at parse/build time, and each default's Python type drives
    the string-value coercion in :func:`parse`.

    Specs with ``is_placement=True`` describe *replication placement*
    strategies instead of cache policies: their factory is called as
    ``factory(**params)`` (plus ``hierarchy=...`` when
    ``needs_hierarchy``) and returns a
    :class:`repro.replication.ReplicationStrategy`.  They share the
    parse/canonicalize machinery but build through
    :func:`build_placement`, never :func:`build`.
    """

    name: str
    factory: Callable[..., ReplacementPolicy] = field(repr=False)
    summary: str = ""
    defaults: Mapping[str, object] = field(default_factory=dict)
    needs_filecules: bool = False
    needs_trace: bool = False
    is_offline_optimal: bool = False
    supports_batch: bool = False
    is_placement: bool = False
    needs_hierarchy: bool = False
    aliases: tuple[str, ...] = ()

    @property
    def flags(self) -> tuple[str, ...]:
        """The active capability-flag names, in :data:`FLAG_NAMES` order."""
        return tuple(f for f in FLAG_NAMES if getattr(self, f))


@dataclass(frozen=True)
class BoundSpec:
    """A picklable (name, explicit-params) policy selection.

    ``params`` holds only the caller's overrides (sorted by key);
    defaults stay implicit so two ways of spelling the same choice
    compare equal and render the same string.
    """

    name: str
    params: tuple[tuple[str, object], ...] = ()

    def __str__(self) -> str:
        if not self.params:
            return self.name
        query = "&".join(f"{k}={_format_value(v)}" for k, v in self.params)
        return f"{self.name}?{query}"


# ----------------------------------------------------------------------
# registry storage
# ----------------------------------------------------------------------

_SPECS: dict[str, PolicySpec] = {}
_ALIASES: dict[str, str] = {}  # alias -> canonical name

#: Set once :func:`_ensure_placements` has imported the placement table.
_PLACEMENTS_LOADED = False


def _ensure_placements() -> None:
    """Load the placement spec table (registered by ``repro.replication``).

    Lazy upward import, same sanctioned pattern as the engine's registry
    upcall: the placement *implementations* live in the replication
    layer above this one, so the registry pulls them in only when a
    placement name is actually asked for — importing ``repro.registry``
    alone never drags in the replication stack.
    """
    global _PLACEMENTS_LOADED
    if _PLACEMENTS_LOADED:
        return
    _PLACEMENTS_LOADED = True  # set first: the import re-enters via deco
    import repro.replication  # noqa: F401  (registration side effect)


def _register(
    name: str,
    *,
    summary: str,
    defaults: Mapping[str, object] | None,
    aliases: tuple[str, ...],
    **flags,
) -> Callable:
    def deco(factory: Callable):
        if name in _SPECS or name in _ALIASES:
            raise ValueError(f"duplicate policy spec name {name!r}")
        spec = PolicySpec(
            name=name,
            factory=factory,
            summary=summary,
            defaults=dict(defaults or {}),
            aliases=tuple(aliases),
            **flags,
        )
        _SPECS[name] = spec
        for alias in spec.aliases:
            if alias in _SPECS or alias in _ALIASES:
                raise ValueError(f"duplicate policy alias {alias!r}")
            _ALIASES[alias] = name
        return factory

    return deco


def register_policy(
    name: str,
    *,
    summary: str = "",
    defaults: Mapping[str, object] | None = None,
    needs_filecules: bool = False,
    needs_trace: bool = False,
    is_offline_optimal: bool = False,
    supports_batch: bool = False,
    aliases: tuple[str, ...] = (),
) -> Callable[[Callable[..., ReplacementPolicy]], Callable[..., ReplacementPolicy]]:
    """Decorator registering ``factory`` under ``name`` (plus aliases)."""
    return _register(
        name,
        summary=summary,
        defaults=defaults,
        aliases=aliases,
        needs_filecules=needs_filecules,
        needs_trace=needs_trace,
        is_offline_optimal=is_offline_optimal,
        supports_batch=supports_batch,
    )


def register_placement(
    name: str,
    *,
    summary: str = "",
    defaults: Mapping[str, object] | None = None,
    needs_hierarchy: bool = False,
    aliases: tuple[str, ...] = (),
) -> Callable:
    """Decorator registering a replication *placement* strategy factory.

    Placements share the registry's namespace, parse/canonicalize
    machinery and wire format with cache policies, but are kept out of
    :func:`policy_names` / :func:`list_specs` (a placement can never
    replay a cache) and build through :func:`build_placement`.
    ``needs_hierarchy`` marks factories that must be handed a
    :class:`repro.hierarchy.HierarchySpec` to place against.
    """
    return _register(
        name,
        summary=summary,
        defaults=defaults,
        aliases=aliases,
        is_placement=True,
        needs_hierarchy=needs_hierarchy,
    )


def list_specs() -> list[PolicySpec]:
    """Every registered cache-policy spec, sorted by canonical name."""
    return [
        _SPECS[name]
        for name in sorted(_SPECS)
        if not _SPECS[name].is_placement
    ]


def list_placement_specs() -> list[PolicySpec]:
    """Every registered placement spec, sorted by canonical name."""
    _ensure_placements()
    return [
        _SPECS[name] for name in sorted(_SPECS) if _SPECS[name].is_placement
    ]


def policy_names(*, include_aliases: bool = False) -> list[str]:
    names = [n for n, s in _SPECS.items() if not s.is_placement]
    if include_aliases:
        names.extend(
            a for a, c in _ALIASES.items() if not _SPECS[c].is_placement
        )
    return sorted(names)


def placement_names(*, include_aliases: bool = False) -> list[str]:
    """Registered placement names (canonical, optionally with aliases)."""
    _ensure_placements()
    names = [n for n, s in _SPECS.items() if s.is_placement]
    if include_aliases:
        names.extend(a for a, c in _ALIASES.items() if _SPECS[c].is_placement)
    return sorted(names)


def get_spec(name: str) -> PolicySpec:
    """Look a spec up by canonical name or alias (policy or placement)."""
    canonical = _ALIASES.get(name, name)
    try:
        return _SPECS[canonical]
    except KeyError:
        pass
    # The name may belong to the lazily-registered placement table.
    _ensure_placements()
    canonical = _ALIASES.get(name, name)
    try:
        return _SPECS[canonical]
    except KeyError:
        known = sorted(
            policy_names(include_aliases=True)
            + placement_names(include_aliases=True)
        )
        raise UnknownPolicyError(
            f"unknown policy {name!r}; known specs: {', '.join(known)}"
        ) from None


def service_policy_names(*, include_aliases: bool = True) -> list[str]:
    """Names usable as online service advisors (no offline resources)."""
    names = []
    for spec in list_specs():
        if spec.needs_filecules or spec.needs_trace:
            continue
        names.append(spec.name)
        if include_aliases:
            names.extend(spec.aliases)
    return sorted(names)


# ----------------------------------------------------------------------
# parse / format
# ----------------------------------------------------------------------

_TRUE = frozenset(("1", "true", "yes", "on"))
_FALSE = frozenset(("0", "false", "no", "off"))


def _format_value(value: object) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)


def _coerce_value(spec: PolicySpec, key: str, raw: str) -> object:
    try:
        default = spec.defaults[key]
    except KeyError:
        valid = ", ".join(sorted(spec.defaults)) or "<none>"
        raise PolicySpecError(
            f"policy {spec.name!r} has no parameter {key!r}; "
            f"valid parameters: {valid}"
        ) from None
    try:
        if isinstance(default, bool):
            lowered = raw.lower()
            if lowered in _TRUE:
                return True
            if lowered in _FALSE:
                return False
            raise ValueError(f"not a boolean: {raw!r}")
        if isinstance(default, int):
            return int(raw)
        if isinstance(default, float):
            return float(raw)
        return raw
    except ValueError as exc:
        raise PolicySpecError(
            f"bad value for {spec.name}?{key}: {exc}"
        ) from None


def parse(text: str | BoundSpec) -> BoundSpec:
    """Parse ``"name?param=value&..."`` into a canonical :class:`BoundSpec`.

    Aliases resolve to the canonical name, parameter values are coerced
    to the type of the spec's default, and parameters are sorted — so
    ``parse`` is a canonicalizer and ``parse(str(spec)) == spec`` holds
    for every parseable spec.
    """
    if isinstance(text, BoundSpec):
        get_spec(text.name)  # validate
        return text
    name, _, query = text.strip().partition("?")
    spec = get_spec(name)
    params: dict[str, object] = {}
    if query:
        for part in query.split("&"):
            if not part:
                continue
            key, sep, raw = part.partition("=")
            if not sep:
                raise PolicySpecError(
                    f"malformed spec {text!r}: expected param=value, "
                    f"got {part!r}"
                )
            params[key] = _coerce_value(spec, key, raw)
    return BoundSpec(name=spec.name, params=tuple(sorted(params.items())))


# ----------------------------------------------------------------------
# build
# ----------------------------------------------------------------------


def build(
    spec: str | BoundSpec,
    capacity: int,
    *,
    trace=None,
    partition=None,
    **params,
) -> ReplacementPolicy:
    """Construct a fresh policy instance from a spec, by name.

    ``trace``/``partition`` are the shared resources a capability-tagged
    spec may require; explicit ``**params`` override both the spec
    string's parameters and the registered defaults.
    """
    bound = parse(spec)
    policy_spec = get_spec(bound.name)
    if policy_spec.is_placement:
        raise PolicySpecError(
            f"{policy_spec.name!r} is a replication placement, not a "
            f"cache policy; build it with build_placement(...)"
        )
    merged = _merge_params(policy_spec, bound, params)
    if policy_spec.needs_filecules and partition is None:
        raise PolicyResourceError(
            f"policy {policy_spec.name!r} needs a filecule partition; "
            f"pass partition=find_filecules(trace)"
        )
    if policy_spec.needs_trace and trace is None:
        raise PolicyResourceError(
            f"policy {policy_spec.name!r} needs the replayed trace; "
            f"pass trace=..."
        )
    return policy_spec.factory(
        int(capacity), trace=trace, partition=partition, **merged
    )


def _merge_params(policy_spec: PolicySpec, bound: BoundSpec, params: dict) -> dict:
    merged = dict(policy_spec.defaults)
    merged.update(bound.params)
    for key, value in params.items():
        if key not in policy_spec.defaults:
            valid = ", ".join(sorted(policy_spec.defaults)) or "<none>"
            raise PolicySpecError(
                f"policy {policy_spec.name!r} has no parameter {key!r}; "
                f"valid parameters: {valid}"
            )
        merged[key] = value
    return merged


def build_placement(spec: str | BoundSpec, *, hierarchy=None, **params):
    """Construct a fresh replication placement strategy from a spec.

    The placement counterpart of :func:`build`: resolves the name (or
    alias) through the shared registry, merges parameter overrides, and
    calls the placement factory.  ``hierarchy`` is the shared resource a
    ``needs_hierarchy``-flagged placement requires — a
    :class:`repro.hierarchy.HierarchySpec` or its wire string.  Passing
    a cache-policy name here raises :class:`PolicySpecError` (use
    :func:`build`), mirroring :func:`build`'s guard in the other
    direction.
    """
    _ensure_placements()
    bound = parse(spec)
    placement_spec = get_spec(bound.name)
    if not placement_spec.is_placement:
        raise PolicySpecError(
            f"{placement_spec.name!r} is a cache policy, not a "
            f"replication placement; build it with build(...)"
        )
    merged = _merge_params(placement_spec, bound, params)
    if placement_spec.needs_hierarchy:
        if hierarchy is None:
            raise PolicyResourceError(
                f"placement {placement_spec.name!r} needs a hierarchy; "
                f"pass hierarchy='site:lru@10%+origin' or a HierarchySpec"
            )
        return placement_spec.factory(hierarchy=hierarchy, **merged)
    return placement_spec.factory(**merged)
