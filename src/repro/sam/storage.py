"""Storage and network cost models: FIFO links and a tape archive.

Transfers are modeled analytically as FIFO servers: a link (or tape
drive pool) has a ``busy_until`` horizon; a new transfer starts at
``max(now, busy_until)``, runs for ``latency + bytes/bandwidth`` and
pushes the horizon forward.  This captures queueing delay under load
without per-packet simulation — the right granularity for multi-month
traces of multi-gigabyte transfers.
"""

from __future__ import annotations

from repro.sam.events import Simulation


class Link:
    """A FIFO network link with fixed bandwidth and per-transfer latency."""

    def __init__(
        self, sim: Simulation, bandwidth_bps: float, latency_s: float = 0.05
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {latency_s}")
        self._sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.busy_until = 0.0
        self.bytes_moved = 0
        self.transfers = 0

    def service_time(self, nbytes: int) -> float:
        """Pure service time of one transfer, excluding queueing."""
        return self.latency_s + nbytes / self.bandwidth_bps

    def enqueue(self, nbytes: int) -> float:
        """Admit a transfer now; returns its absolute completion time."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        start = max(self._sim.now, self.busy_until)
        finish = start + self.service_time(nbytes)
        self.busy_until = finish
        self.bytes_moved += nbytes
        self.transfers += 1
        return finish

    @property
    def queue_delay(self) -> float:
        """Current backlog a new transfer would wait behind."""
        return max(0.0, self.busy_until - self._sim.now)


class TapeArchive:
    """The hub's mass-storage system: mount latency + shared drive pool.

    DZero's raw and derived data live on tape behind Enstore; a cache
    miss that reaches the archive pays a mount penalty and shares the
    drive bandwidth FIFO, like :class:`Link` with a big latency.
    """

    def __init__(
        self,
        sim: Simulation,
        bandwidth_bps: float = 8 * 30e6,  # ~30 MB/s LTO-era drive pool
        mount_latency_s: float = 90.0,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if mount_latency_s < 0:
            raise ValueError(f"mount latency must be >= 0, got {mount_latency_s}")
        self._link = Link(sim, bandwidth_bps, mount_latency_s)

    def stage(self, nbytes: int) -> float:
        """Stage ``nbytes`` from tape; returns absolute completion time."""
        return self._link.enqueue(nbytes)

    @property
    def bytes_staged(self) -> int:
        return self._link.bytes_moved

    @property
    def mounts(self) -> int:
        return self._link.transfers


class TransferModel:
    """Site-to-site transfer cost: hub-and-spoke WAN topology.

    Each site has one WAN link; a transfer from site A to site B queues on
    both ends (bottleneck FIFO: completion is the later of the two).  The
    hub (site of the mass-storage system) typically has a fatter link.
    """

    def __init__(
        self,
        sim: Simulation,
        n_sites: int,
        hub_site: int = 0,
        wan_bandwidth_bps: float = 8 * 12.5e6,  # 100 Mb/s spokes
        hub_bandwidth_bps: float = 8 * 125e6,  # 1 Gb/s hub
        latency_s: float = 0.05,
    ) -> None:
        if n_sites < 1:
            raise ValueError(f"need at least one site, got {n_sites}")
        if not 0 <= hub_site < n_sites:
            raise ValueError(f"hub site {hub_site} out of range")
        self._sim = sim
        self.hub_site = hub_site
        self.links = [
            Link(
                sim,
                hub_bandwidth_bps if s == hub_site else wan_bandwidth_bps,
                latency_s,
            )
            for s in range(n_sites)
        ]

    def transfer(self, src_site: int, dst_site: int, nbytes: int) -> float:
        """Move bytes between sites; returns absolute completion time.

        Intra-site moves are free (shared local storage, §5's assumption
        that users of one institution share local data access).
        """
        if src_site == dst_site:
            return self._sim.now
        t_src = self.links[src_site].enqueue(nbytes)
        t_dst = self.links[dst_site].enqueue(nbytes)
        return max(t_src, t_dst)

    def wan_bytes(self) -> int:
        """Total bytes that crossed any WAN link (each transfer counted
        once per endpoint)."""
        return sum(link.bytes_moved for link in self.links)
