"""A SAM station: per-site disk cache plus fetch logic.

Each site runs a station.  A project (job) presents its input file list;
for every file the station resolves the cheapest source:

1. a *pinned replica* at this site (placed by a replication strategy and
   registered in the :class:`~repro.sam.catalog.ReplicaCatalog`) — free;
2. the local demand cache (any :class:`repro.cache.ReplacementPolicy`) —
   free on hit, and misses are admitted;
3. a disk replica at another site — a WAN transfer;
4. the tape archive at the hub — staging plus (off-hub) a WAN transfer.

The job's data stall is the latest completion among its fetches; the
station accumulates byte counters per source class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.base import ReplacementPolicy
from repro.sam.catalog import ReplicaCatalog
from repro.sam.events import Simulation
from repro.sam.storage import TapeArchive, TransferModel


@dataclass(slots=True)
class StationMetrics:
    """Per-station byte and stall accounting."""

    site: int
    projects: int = 0
    requests: int = 0
    bytes_requested: int = 0
    bytes_pinned: int = 0
    bytes_cache_hit: int = 0
    bytes_wan: int = 0
    bytes_tape: int = 0
    stall_seconds: list[float] = field(default_factory=list)

    @property
    def local_byte_fraction(self) -> float:
        """Fraction of requested bytes served without WAN/tape traffic."""
        if self.bytes_requested == 0:
            return 0.0
        return (self.bytes_pinned + self.bytes_cache_hit) / self.bytes_requested

    @property
    def mean_stall_seconds(self) -> float:
        if not self.stall_seconds:
            return 0.0
        return float(np.mean(self.stall_seconds))


class Station:
    """One site's data-handling station."""

    def __init__(
        self,
        sim: Simulation,
        site: int,
        cache: ReplacementPolicy,
        catalog: ReplicaCatalog,
        transfers: TransferModel,
        tape: TapeArchive,
        file_sizes: np.ndarray,
    ) -> None:
        self._sim = sim
        self.site = site
        self.cache = cache
        self._catalog = catalog
        self._transfers = transfers
        self._tape = tape
        self._sizes = file_sizes
        self.metrics = StationMetrics(site=site)

    def _fetch_remote(self, file_id: int, size: int) -> float:
        """Fetch a non-local file; returns absolute completion time."""
        source = self._catalog.best_source(file_id, self.site)
        hub = self._transfers.hub_site
        if self._catalog.has_replica(file_id, source):
            if source == self.site:
                # pinned replica raced in after the caller's check; free
                return self._sim.now
            self.metrics.bytes_wan += size
            return self._transfers.transfer(source, self.site, size)
        # no disk replica anywhere: stage from tape at the hub, then cross
        # the WAN unless we are the hub
        staged_at = self._tape.stage(size)
        self.metrics.bytes_tape += size
        if self.site == hub:
            return staged_at
        self.metrics.bytes_wan += size
        done = self._transfers.transfer(hub, self.site, size)
        return max(staged_at, done)

    def run_project(self, file_ids: np.ndarray) -> float:
        """Execute one project's data phase now; returns the data stall
        in seconds (time until the last input byte is on site)."""
        start = self._sim.now
        done = start
        self.metrics.projects += 1
        for f in np.asarray(file_ids, dtype=np.int64):
            f = int(f)
            size = int(self._sizes[f])
            self.metrics.requests += 1
            self.metrics.bytes_requested += size
            if self._catalog.has_replica(f, self.site):
                self.metrics.bytes_pinned += size
                continue
            outcome = self.cache.request(f, size, start)
            if outcome.hit:
                self.metrics.bytes_cache_hit += size
                continue
            # group-granularity caches pull the whole group into the
            # cache; the transfer must be priced at those bytes, not just
            # the requested file's
            volume = outcome.bytes_fetched if outcome.bytes_fetched > 0 else size
            done = max(done, self._fetch_remote(f, volume))
        stall = done - start
        self.metrics.stall_seconds.append(stall)
        return stall
