"""Trace replay across a grid of SAM stations.

:func:`replay_trace` builds the whole substrate — simulation clock,
hub-and-spoke transfer model, tape archive, replica catalog and one
station per site — schedules every traced job at its start time on its
submission site, runs the event simulation to completion and returns a
:class:`GridReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.cache.base import ReplacementPolicy
from repro.cache.lru import FileLRU
from repro.sam.catalog import ReplicaCatalog
from repro.sam.events import Simulation
from repro.sam.station import Station, StationMetrics
from repro.sam.storage import TapeArchive, TransferModel
from repro.traces.trace import Trace
from repro.util.units import TB

#: Builds a station's cache; receives (capacity_bytes, site).
CacheFactory = Callable[[int, int], ReplacementPolicy]


@dataclass(frozen=True, slots=True)
class GridReport:
    """Grid-wide outcome of one replay."""

    stations: tuple[StationMetrics, ...]
    tape_bytes: int
    tape_mounts: int
    wan_bytes: int

    @property
    def total_requested_bytes(self) -> int:
        return sum(s.bytes_requested for s in self.stations)

    @property
    def local_byte_fraction(self) -> float:
        total = self.total_requested_bytes
        if total == 0:
            return 0.0
        local = sum(s.bytes_pinned + s.bytes_cache_hit for s in self.stations)
        return local / total

    @property
    def mean_stall_seconds(self) -> float:
        stalls = [t for s in self.stations for t in s.stall_seconds]
        return float(np.mean(stalls)) if stalls else 0.0

    @property
    def p95_stall_seconds(self) -> float:
        stalls = [t for s in self.stations for t in s.stall_seconds]
        return float(np.quantile(stalls, 0.95)) if stalls else 0.0


def replay_trace(
    trace: Trace,
    cache_factory: CacheFactory | None = None,
    cache_capacity: int = 5 * TB,
    catalog: ReplicaCatalog | None = None,
    hub_site: int = 0,
    wan_bandwidth_bps: float = 8 * 12.5e6,
    hub_bandwidth_bps: float = 8 * 125e6,
    run: bool = True,
) -> GridReport:
    """Replay every traced job of ``trace`` through the grid substrate.

    ``cache_factory`` defaults to a per-site :class:`FileLRU` of
    ``cache_capacity``; pass a factory closing over a filecule partition
    to replay with :class:`~repro.cache.FileculeLRU` stations.  An
    externally prepared ``catalog`` carries pinned replicas (the
    replication experiments use this); by default the catalog is empty
    and everything is demand-fetched through the hub's tape archive.
    """
    if cache_factory is None:
        cache_factory = lambda capacity, site: FileLRU(capacity)  # noqa: E731

    sim = Simulation()
    transfers = TransferModel(
        sim,
        trace.n_sites,
        hub_site=hub_site,
        wan_bandwidth_bps=wan_bandwidth_bps,
        hub_bandwidth_bps=hub_bandwidth_bps,
    )
    tape = TapeArchive(sim)
    if catalog is None:
        catalog = ReplicaCatalog(trace.n_files, trace.n_sites, hub_site)
    stations = [
        Station(
            sim,
            site,
            cache_factory(cache_capacity, site),
            catalog,
            transfers,
            tape,
            trace.file_sizes,
        )
        for site in range(trace.n_sites)
    ]

    ptr = trace.job_access_ptr
    sites = trace.job_sites
    for j in range(trace.n_jobs):
        files = trace.access_files[ptr[j] : ptr[j + 1]]
        if len(files) == 0:
            continue
        station = stations[int(sites[j])]
        # bind loop variables explicitly; files is a read-only view
        sim.at(
            float(trace.job_starts[j]),
            (lambda st=station, fl=files: st.run_project(fl)),
        )
    if run:
        sim.run()
    return GridReport(
        stations=tuple(s.metrics for s in stations),
        tape_bytes=tape.bytes_staged,
        tape_mounts=tape.mounts,
        wan_bytes=transfers.wan_bytes(),
    )
