"""Deterministic discrete-event simulation core.

A minimal heap-based scheduler: events are (time, sequence, callback)
triples; ties in time break by scheduling order, so runs are fully
deterministic.  Callbacks may schedule further events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from collections.abc import Callable


@dataclass(order=True, slots=True)
class Event:
    """One scheduled callback; ordering is (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class Simulation:
    """An event queue with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._processed = 0

    @property
    def pending(self) -> int:
        """Events still queued (including cancelled ones not yet popped)."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    def at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time}, clock is already at {self.now}"
            )
        event = Event(time=float(time), seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, callback)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping at a time/event bound.

        ``until`` executes all events with time <= until; ``max_events``
        is a safety valve against runaway scheduling loops.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events — "
                    f"likely a scheduling loop"
                )
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                self.now = until
                return
            self.step()
            executed += 1
