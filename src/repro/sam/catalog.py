"""Replica catalog: which sites hold which files.

SAM "thoroughly catalogs data for content, provenance, status, location"
(§2.2).  This model keeps the location facet: a file → sites mapping with
registration, eviction and nearest-replica lookup, plus filecule-level
convenience queries used by the replication strategies.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable

import numpy as np

from repro.core.filecule import Filecule


class ReplicaCatalog:
    """Tracks replica locations for a fixed file catalog."""

    def __init__(self, n_files: int, n_sites: int, hub_site: int = 0) -> None:
        if n_files < 0 or n_sites < 1:
            raise ValueError("need n_files >= 0 and n_sites >= 1")
        if not 0 <= hub_site < n_sites:
            raise ValueError(f"hub site {hub_site} out of range")
        self.n_files = n_files
        self.n_sites = n_sites
        self.hub_site = hub_site
        self._sites_of: dict[int, set[int]] = defaultdict(set)
        self._files_at: dict[int, set[int]] = defaultdict(set)

    def _check(self, file_id: int, site: int | None = None) -> None:
        if not 0 <= file_id < self.n_files:
            raise KeyError(f"file id {file_id} out of range")
        if site is not None and not 0 <= site < self.n_sites:
            raise KeyError(f"site {site} out of range")

    def register(self, file_id: int, site: int) -> None:
        """Record that ``site`` now holds a replica of ``file_id``."""
        self._check(file_id, site)
        self._sites_of[file_id].add(site)
        self._files_at[site].add(file_id)

    def unregister(self, file_id: int, site: int) -> None:
        """Drop a replica record (idempotent)."""
        self._check(file_id, site)
        self._sites_of[file_id].discard(site)
        self._files_at[site].discard(file_id)

    def locate(self, file_id: int) -> frozenset[int]:
        """Disk-resident replica sites; the tape archive at the hub is
        always an implicit source of last resort and is *not* listed."""
        self._check(file_id)
        return frozenset(self._sites_of[file_id])

    def has_replica(self, file_id: int, site: int) -> bool:
        self._check(file_id, site)
        return site in self._sites_of[file_id]

    def files_at(self, site: int) -> frozenset[int]:
        if not 0 <= site < self.n_sites:
            raise KeyError(f"site {site} out of range")
        return frozenset(self._files_at[site])

    def best_source(self, file_id: int, dst_site: int) -> int:
        """Pick the source site for a fetch to ``dst_site``.

        Preference: a same-site replica (free), else any disk replica
        (deterministically the lowest site id), else the hub (tape).
        """
        self._check(file_id, dst_site)
        sites = self._sites_of[file_id]
        if dst_site in sites:
            return dst_site
        if sites:
            return min(sites)
        return self.hub_site

    # -- filecule-level helpers -------------------------------------------
    def filecule_presence(self, filecule: Filecule, site: int) -> float:
        """Fraction of the filecule's files with a replica at ``site``.

        The §6 discussion keys replication decisions on "the status of the
        filecule (partially or not-replicated) on the destination storage";
        this is that status.
        """
        if not 0 <= site < self.n_sites:
            raise KeyError(f"site {site} out of range")
        held = self._files_at[site]
        present = sum(1 for f in filecule.file_ids if int(f) in held)
        return present / filecule.n_files

    def register_filecule(
        self, filecule: Filecule, site: int
    ) -> None:
        """Register every member file of a filecule at ``site``."""
        for f in filecule.file_ids:
            self.register(int(f), site)

    def bulk_register(self, file_ids: Iterable[int], site: int) -> None:
        for f in file_ids:
            self.register(int(f), site)

    def site_bytes(self, site: int, file_sizes: np.ndarray) -> int:
        """Total bytes of replicas held at ``site``."""
        held = self.files_at(site)
        if not held:
            return 0
        idx = np.fromiter(held, dtype=np.int64, count=len(held))
        return int(np.asarray(file_sizes)[idx].sum())
