"""SAM-like grid substrate: event simulation, storage, catalog, stations.

The paper's experiments run on top of SAM, FermiLab's data-handling
middleware (§2.2): stations with disk caches at every site, a mass-storage
(tape) system at the hub, a replica catalog, and WAN transfers between
them.  This package is a compact discrete-event model of that substrate,
used by the replication study and the end-to-end examples:

* :mod:`repro.sam.events` — deterministic event queue / simulation clock;
* :mod:`repro.sam.storage` — FIFO bandwidth links and a tape archive with
  mount latency;
* :mod:`repro.sam.catalog` — replica catalog (file → sites);
* :mod:`repro.sam.station` — a SAM station: local disk cache (any
  :class:`repro.cache.ReplacementPolicy`) + fetch logic;
* :mod:`repro.sam.scheduler` — replays a trace across stations and
  aggregates grid-wide metrics.
"""

from repro.sam.events import Simulation, Event
from repro.sam.storage import Link, TapeArchive, TransferModel
from repro.sam.catalog import ReplicaCatalog
from repro.sam.station import Station, StationMetrics
from repro.sam.scheduler import GridReport, replay_trace

__all__ = [
    "Simulation",
    "Event",
    "Link",
    "TapeArchive",
    "TransferModel",
    "ReplicaCatalog",
    "Station",
    "StationMetrics",
    "GridReport",
    "replay_trace",
]
