"""The scenario transform catalog: trace → trace workload perturbations.

Every transform here is registered with
:func:`~repro.scenario.spec.register_scenario` and has the signature
``fn(trace, rng, **params) -> Trace``.  Transforms never mutate their
input (traces are immutable); they rebuild the columns they change and
let the :class:`~repro.traces.trace.Trace` constructor re-canonicalize
and re-validate.  All randomness comes from the passed generator, which
:class:`~repro.scenario.compose.Composition` seeds deterministically per
(composition seed, position, spec string) — the property behind the
bit-identical-replay guarantee the tests assert.

The catalog covers the non-stationarities the in-network-caching studies
report for scientific workloads (dataset drift, reprocessing campaigns,
flash crowds, infrastructure churn) plus one adversary:

======================  =================================================
``stationary``          identity — the paper's single-world baseline
``popularity-drift``    gradual dataset-popularity rotation over time
``phase-shift``         reprocessing campaign: popularity ranks mirror
                        after a cut-over instant
``flash-crowd``         a burst of extra jobs hammering one dataset's
                        hottest files (welds a transient filecule)
``site-outage``         one site's jobs fail over to other sites for a
                        window, then rejoin
``scan-flood``          adversarial sequential scans striding across the
                        whole file population
======================  =================================================
"""

from __future__ import annotations

import numpy as np

from repro.scenario.spec import register_scenario
from repro.traces.trace import Trace


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------


def _replace(trace: Trace, **overrides) -> Trace:
    """Rebuild a trace with some columns replaced (re-validated)."""
    columns = dict(
        file_sizes=trace.file_sizes,
        file_tiers=trace.file_tiers,
        file_datasets=trace.file_datasets,
        job_users=trace.job_users,
        job_nodes=trace.job_nodes,
        job_tiers=trace.job_tiers,
        job_starts=trace.job_starts,
        job_ends=trace.job_ends,
        access_jobs=trace.access_jobs,
        access_files=trace.access_files,
        user_domains=trace.user_domains,
        node_sites=trace.node_sites,
        node_domains=trace.node_domains,
        site_names=trace.site_names,
        domain_names=trace.domain_names,
        job_labels=trace.job_labels,
    )
    columns.update(overrides)
    return Trace(**columns)


def _time_fractions(trace: Trace) -> np.ndarray:
    """Each job's start as a fraction of the trace's time span, in [0, 1]."""
    t0, t1 = trace.time_span()
    span = t1 - t0
    if span <= 0.0:
        return np.zeros(trace.n_jobs)
    return (trace.job_starts - t0) / span


class _DatasetIndex:
    """File ↔ dataset cross-index for rank-preserving remapping.

    ``map_files(file_ids, target_ds)`` sends each file to the file at
    the *same within-dataset rank* in its target dataset (rank taken
    modulo the target's size) — the structure-preserving way to move a
    job's working set between datasets without inventing file ids.
    """

    def __init__(self, trace: Trace) -> None:
        ds = trace.file_datasets
        self.n_datasets = int(ds.max()) + 1 if len(ds) else 0
        self.order = np.argsort(ds, kind="stable")
        self.counts = np.bincount(ds, minlength=self.n_datasets)
        self.starts = np.zeros(self.n_datasets + 1, dtype=np.int64)
        np.cumsum(self.counts, out=self.starts[1:])
        self.rank = np.empty(len(ds), dtype=np.int64)
        self.rank[self.order] = (
            np.arange(len(ds)) - self.starts[ds[self.order]]
        )

    def map_files(self, file_ids: np.ndarray, target_ds: np.ndarray) -> np.ndarray:
        counts = self.counts[target_ds]
        mapped = np.where(
            counts > 0,
            self.order[
                self.starts[target_ds]
                + self.rank[file_ids] % np.maximum(counts, 1)
            ],
            file_ids,  # empty target dataset: keep the original file
        )
        return mapped


def _inject_jobs(
    trace: Trace,
    starts: np.ndarray,
    ends: np.ndarray,
    users: np.ndarray,
    nodes: np.ndarray,
    tiers: np.ndarray,
    file_lists: list[np.ndarray],
) -> Trace:
    """New trace with extra jobs spliced in chronologically.

    Existing jobs keep their labels; injected jobs get fresh labels past
    the current maximum, so sub-traces stay attributable.  The combined
    job table is stably re-sorted by start time (Trace contract: job id
    order ≈ chronological) and the access columns renumbered to match.
    """
    n_old, n_new = trace.n_jobs, len(starts)
    if n_new == 0:
        return trace
    all_starts = np.concatenate([trace.job_starts, starts])
    order = np.argsort(all_starts, kind="stable")
    pos = np.empty(n_old + n_new, dtype=np.int64)
    pos[order] = np.arange(n_old + n_new)

    lens = np.fromiter(
        (len(fl) for fl in file_lists), dtype=np.int64, count=n_new
    )
    new_access_jobs = pos[n_old + np.repeat(np.arange(n_new), lens)]
    new_access_files = (
        np.concatenate([np.asarray(fl, dtype=np.int64) for fl in file_lists])
        if lens.sum()
        else np.empty(0, dtype=np.int64)
    )
    next_label = int(trace.job_labels.max()) + 1 if n_old else 0
    all_labels = np.concatenate(
        [trace.job_labels, next_label + np.arange(n_new, dtype=np.int64)]
    )
    return _replace(
        trace,
        job_users=np.concatenate([trace.job_users, users])[order],
        job_nodes=np.concatenate([trace.job_nodes, nodes])[order],
        job_tiers=np.concatenate([trace.job_tiers, tiers])[order],
        job_starts=all_starts[order],
        job_ends=np.concatenate([trace.job_ends, ends])[order],
        access_jobs=np.concatenate([pos[trace.access_jobs], new_access_jobs]),
        access_files=np.concatenate([trace.access_files, new_access_files]),
        job_labels=all_labels[order],
    )


def _template_rows(trace: Trace, rng: np.random.Generator, n: int):
    """Copy user/node/tier rows from ``n`` randomly drawn existing jobs."""
    idx = rng.integers(0, trace.n_jobs, size=n)
    return (
        trace.job_users[idx],
        trace.job_nodes[idx],
        trace.job_tiers[idx],
    )


# ----------------------------------------------------------------------
# transforms
# ----------------------------------------------------------------------


@register_scenario(
    "stationary",
    summary="identity transform: the paper's single stationary world",
)
def stationary(trace: Trace, rng: np.random.Generator) -> Trace:
    return trace


@register_scenario(
    "popularity-drift",
    summary="rotate dataset popularity over time (late jobs drift most)",
    defaults={"strength": 0.5, "shift": 1},
    aliases=("drift",),
    window=lambda params: (0.0, 1.0),
)
def popularity_drift(
    trace: Trace,
    rng: np.random.Generator,
    strength: float = 0.5,
    shift: int = 1,
) -> Trace:
    """Remap drifting jobs' accesses to rank-shifted datasets.

    Each job drifts with probability ``strength`` × its time fraction —
    early jobs almost never, late jobs up to ``strength`` — and a
    drifting job reads the files at the same within-dataset ranks of the
    dataset ``shift`` places over.  This reproduces the gradual
    interest-rotation the in-network cache studies observe: the file
    population is unchanged, but *which* files are popular moves.
    """
    index = _DatasetIndex(trace)
    if trace.n_jobs == 0 or trace.n_accesses == 0 or index.n_datasets < 2:
        return trace
    p = np.clip(strength * _time_fractions(trace), 0.0, 1.0)
    drifts = rng.random(trace.n_jobs) < p
    if not drifts.any():
        return trace
    files = trace.access_files
    target_ds = (trace.file_datasets[files] + shift) % index.n_datasets
    mapped = index.map_files(files, target_ds)
    new_files = np.where(drifts[trace.access_jobs], mapped, files)
    return _replace(trace, access_files=new_files)


@register_scenario(
    "phase-shift",
    summary="reprocessing campaign: popularity ranks mirror at a cut-over",
    defaults={"at": 0.5},
    aliases=("reprocessing",),
    window=lambda params: (params["at"], 1.0),
)
def phase_shift(
    trace: Trace, rng: np.random.Generator, at: float = 0.5
) -> Trace:
    """Mirror the dataset popularity order for jobs after ``at``.

    Jobs starting at or past time fraction ``at`` read the mirrored
    dataset (``d → n_datasets - 1 - d``) at the same within-dataset
    ranks: a hard cut-over where yesterday's cold data becomes today's
    campaign input — the reprocessing pattern of §2's production tier.
    Deterministic (no randomness).
    """
    index = _DatasetIndex(trace)
    if trace.n_jobs == 0 or trace.n_accesses == 0 or index.n_datasets < 2:
        return trace
    shifted = _time_fractions(trace) >= at
    if not shifted.any():
        return trace
    files = trace.access_files
    target_ds = index.n_datasets - 1 - trace.file_datasets[files]
    mapped = index.map_files(files, target_ds)
    new_files = np.where(shifted[trace.access_jobs], mapped, files)
    return _replace(trace, access_files=new_files)


@register_scenario(
    "flash-crowd",
    summary="burst of extra jobs hammering one dataset's hottest files",
    defaults={
        "at": 0.6,
        "width": 0.1,
        "boost": 0.3,
        "dataset": -1,
        "files": 32,
    },
    aliases=("crowd",),
    window=lambda params: (params["at"], params["at"] + params["width"]),
)
def flash_crowd(
    trace: Trace,
    rng: np.random.Generator,
    at: float = 0.6,
    width: float = 0.1,
    boost: float = 0.3,
    dataset: int = -1,
    files: int = 32,
) -> Trace:
    """Inject ``boost × n_jobs`` jobs all reading one hot file group.

    The crowd lands in the window ``[at, at + width)`` (time fractions)
    and every crowd job reads the same ``files`` most-popular files of
    the target dataset (``dataset=-1`` picks the globally hottest one).
    The repeated identical co-access welds those files into one filecule
    — which then goes *stale* the moment the crowd passes, the pattern
    the decayed identifier exists to unwind.
    """
    index = _DatasetIndex(trace)
    if trace.n_jobs == 0 or trace.n_accesses == 0 or index.n_datasets == 0:
        return trace
    if dataset < 0:
        by_ds = np.zeros(index.n_datasets, dtype=np.int64)
        np.add.at(by_ds, trace.file_datasets, trace.file_popularity)
        dataset = int(by_ds.argmax())
    if dataset >= index.n_datasets or index.counts[dataset] == 0:
        return trace
    members = index.order[
        index.starts[dataset] : index.starts[dataset] + index.counts[dataset]
    ]
    # Hottest first; ties break on the lower file id for determinism.
    hot = members[
        np.lexsort((members, -trace.file_popularity[members]))
    ][: max(1, files)]
    hot = np.sort(hot)

    n_new = max(1, int(round(boost * trace.n_jobs)))
    t0, t1 = trace.time_span()
    span = t1 - t0
    starts = t0 + (at + width * rng.random(n_new)) * span
    duration = float(np.median(trace.job_ends - trace.job_starts))
    users, nodes, tiers = _template_rows(trace, rng, n_new)
    return _inject_jobs(
        trace,
        starts=starts,
        ends=starts + duration,
        users=users,
        nodes=nodes,
        tiers=tiers,
        file_lists=[hot] * n_new,
    )


@register_scenario(
    "site-outage",
    summary="one site's jobs fail over to other sites for a window",
    defaults={"site": 0, "at": 0.3, "duration": 0.2},
    aliases=("outage",),
    window=lambda params: (params["at"], params["at"] + params["duration"]),
)
def site_outage(
    trace: Trace,
    rng: np.random.Generator,
    site: int = 0,
    at: float = 0.3,
    duration: float = 0.2,
) -> Trace:
    """Reassign the outaged site's jobs to nodes of other sites.

    Jobs submitted from ``site`` during ``[at, at + duration)`` are
    re-homed onto uniformly drawn nodes of the surviving sites; outside
    the window the site operates (and rejoins) unchanged.  Only the
    ``job_nodes`` column changes — the access pattern is intact, which
    is exactly what makes the scenario interesting for per-site cache
    advisors and the sharded service: traffic moves, co-access does not.
    """
    if trace.n_jobs == 0:
        return trace
    survivors = np.flatnonzero(trace.node_sites != site)
    if len(survivors) == 0:
        return trace
    tf = _time_fractions(trace)
    hit = (
        (trace.job_sites == site) & (tf >= at) & (tf < at + duration)
    )
    if not hit.any():
        return trace
    new_nodes = trace.job_nodes.copy()
    new_nodes[hit] = survivors[rng.integers(0, len(survivors), int(hit.sum()))]
    return _replace(trace, job_nodes=new_nodes)


@register_scenario(
    "scan-flood",
    summary="adversarial sequential scans striding across all files",
    defaults={"at": 0.0, "rate": 0.1, "files": 64, "stride": 1},
    aliases=("scan",),
    window=lambda params: (params["at"], 1.0),
)
def scan_flood(
    trace: Trace,
    rng: np.random.Generator,
    at: float = 0.0,
    rate: float = 0.1,
    files: int = 64,
    stride: int = 1,
) -> Trace:
    """Inject ``rate × n_jobs`` scan jobs sweeping the file population.

    Scan job ``k`` reads ``files`` consecutive (mod ``stride``) file ids
    starting where job ``k-1`` stopped, wrapping around the catalog —
    the classic cache-adversarial sequential scan.  Scans share no
    stable co-access signature with real jobs, so they both pollute
    caches and shatter filecule classes, which is what the robustness
    matrix measures.  Jobs are spread evenly over ``[at, 1]``.
    """
    if trace.n_jobs == 0 or trace.n_files == 0:
        return trace
    n_new = max(1, int(round(rate * trace.n_jobs)))
    files = max(1, int(files))
    stride = max(1, int(stride))
    file_lists = [
        (k * files * stride + stride * np.arange(files)) % trace.n_files
        for k in range(n_new)
    ]
    t0, t1 = trace.time_span()
    span = t1 - t0
    starts = t0 + (at + (1.0 - at) * (np.arange(n_new) + 0.5) / n_new) * span
    duration = float(np.median(trace.job_ends - trace.job_starts))
    users, nodes, tiers = _template_rows(trace, rng, n_new)
    return _inject_jobs(
        trace,
        starts=starts,
        ends=starts + duration,
        users=users,
        nodes=nodes,
        tiers=tiers,
        file_lists=file_lists,
    )
