"""Composable, seed-deterministic workload scenarios.

The paper studies one stationary 27-month workload; this package turns
that single world into a family of perturbed ones — dataset popularity
drift, reprocessing phase shifts, flash crowds, site outages and scan
floods — so identification and caching can be stress-tested where
filecule structure is *not* a fixed point (see ``docs/SCENARIOS.md``).

Three public surfaces:

* **specs** — ``"name?param=value"`` wire strings (the
  :mod:`repro.registry` convention) parsed by :func:`parse_scenario`,
  stacked with ``+`` / :func:`compose` into a :class:`Composition`;
* **offline** — ``composition.apply(trace, seed)`` rewrites a trace;
* **streaming** — :func:`scenario_job_stream` feeds the transformed
  world to the service load generator as lazy job events.

Determinism: the same composition string and seed produce bit-identical
traces (property-tested); each transform owns an independent
:func:`~repro.util.rng.stable_seed`-derived stream.
"""

from repro.scenario.compose import Composition, compose, parse_composition
from repro.scenario.spec import (
    ScenarioSpec,
    ScenarioSpecError,
    TransformSpec,
    UnknownScenarioError,
    bound_params,
    get_transform,
    injection_window,
    list_transforms,
    parse_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenario.stream import scenario_job_stream

# Import the catalog for its registration side effects.
from repro.scenario import transforms  # noqa: F401  (registration import)

__all__ = [
    "Composition",
    "ScenarioSpec",
    "ScenarioSpecError",
    "TransformSpec",
    "UnknownScenarioError",
    "bound_params",
    "compose",
    "get_transform",
    "injection_window",
    "list_transforms",
    "parse_composition",
    "parse_scenario",
    "register_scenario",
    "scenario_job_stream",
    "scenario_names",
]
