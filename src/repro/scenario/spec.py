"""Scenario-spec data model: declarative, picklable workload transforms.

A :class:`TransformSpec` describes one registered scenario transform —
its canonical name, the transform function, and the tunable parameters
with their defaults.  A :class:`ScenarioSpec` is the *picklable
selection* of one: canonical name plus explicit parameter overrides,
with the same URL-query-ish ``"name?param=value&other=value"`` wire
format as :mod:`repro.registry` policy specs, and the same canonicalizer
guarantee: ``parse_scenario(str(spec)) == spec`` for every representable
spec (property-tested).  Transforms stack with ``+``:
``"popularity-drift?strength=0.8+flash-crowd?boost=0.5"`` parses into a
:class:`~repro.scenario.compose.Composition` applied left to right.

The coercion rules mirror the registry's: each default's Python type
drives string-value coercion, booleans accept ``1/true/yes/on`` and
``0/false/no/off``, and unknown parameters are rejected at parse time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping


class UnknownScenarioError(ValueError):
    """No registered transform matches the requested scenario name."""


class ScenarioSpecError(ValueError):
    """A scenario spec string or parameter set is malformed."""


@dataclass(frozen=True)
class TransformSpec:
    """Declarative description of one registered scenario transform.

    ``fn`` is called as ``fn(trace, rng, **params)`` and must return a
    new :class:`~repro.traces.trace.Trace`; ``rng`` is a seeded
    :class:`numpy.random.Generator` owned exclusively by this transform
    application.  ``defaults`` is the complete parameter schema.
    """

    name: str
    fn: Callable = field(repr=False)
    summary: str = ""
    defaults: Mapping[str, object] = field(default_factory=dict)
    aliases: tuple[str, ...] = ()
    #: Optional ``params -> (lo, hi) | None`` callable giving the
    #: transform's injection window as run-time fractions — the ground
    #: truth the detection experiment scores detectors against.  ``None``
    #: (the callable, or its return) means "no anomalous window".
    window: Callable | None = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class ScenarioSpec:
    """A picklable (name, explicit-params) scenario selection.

    ``params`` holds only the caller's overrides (sorted by key);
    defaults stay implicit so two ways of spelling the same choice
    compare equal and render the same string.
    """

    name: str
    params: tuple[tuple[str, object], ...] = ()

    def __str__(self) -> str:
        if not self.params:
            return self.name
        query = "&".join(f"{k}={_format_value(v)}" for k, v in self.params)
        return f"{self.name}?{query}"


# ----------------------------------------------------------------------
# registry storage
# ----------------------------------------------------------------------

_TRANSFORMS: dict[str, TransformSpec] = {}
_ALIASES: dict[str, str] = {}  # alias -> canonical name


def register_scenario(
    name: str,
    *,
    summary: str = "",
    defaults: Mapping[str, object] | None = None,
    aliases: tuple[str, ...] = (),
    window: Callable | None = None,
) -> Callable[[Callable], Callable]:
    """Decorator registering a transform function under ``name``."""

    def deco(fn: Callable) -> Callable:
        if name in _TRANSFORMS or name in _ALIASES:
            raise ValueError(f"duplicate scenario name {name!r}")
        spec = TransformSpec(
            name=name,
            fn=fn,
            summary=summary,
            defaults=dict(defaults or {}),
            aliases=tuple(aliases),
            window=window,
        )
        _TRANSFORMS[name] = spec
        for alias in spec.aliases:
            if alias in _TRANSFORMS or alias in _ALIASES:
                raise ValueError(f"duplicate scenario alias {alias!r}")
            _ALIASES[alias] = name
        return fn

    return deco


def list_transforms() -> list[TransformSpec]:
    """Every registered transform spec, sorted by canonical name."""
    return [_TRANSFORMS[name] for name in sorted(_TRANSFORMS)]


def scenario_names(*, include_aliases: bool = False) -> list[str]:
    names = list(_TRANSFORMS)
    if include_aliases:
        names.extend(_ALIASES)
    return sorted(names)


def get_transform(name: str) -> TransformSpec:
    """Look a transform up by canonical name or alias."""
    canonical = _ALIASES.get(name, name)
    try:
        return _TRANSFORMS[canonical]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; known scenarios: "
            f"{', '.join(scenario_names(include_aliases=True))}"
        ) from None


# ----------------------------------------------------------------------
# parse / format
# ----------------------------------------------------------------------

_TRUE = frozenset(("1", "true", "yes", "on"))
_FALSE = frozenset(("0", "false", "no", "off"))


def _format_value(value: object) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        # "+" is the composition separator, so canonical rendering must
        # never produce one: 1e+16 round-trips as 1e16.
        return repr(value).replace("e+", "e")
    return str(value)


def _coerce_value(spec: TransformSpec, key: str, raw: str) -> object:
    try:
        default = spec.defaults[key]
    except KeyError:
        valid = ", ".join(sorted(spec.defaults)) or "<none>"
        raise ScenarioSpecError(
            f"scenario {spec.name!r} has no parameter {key!r}; "
            f"valid parameters: {valid}"
        ) from None
    try:
        if isinstance(default, bool):
            lowered = raw.lower()
            if lowered in _TRUE:
                return True
            if lowered in _FALSE:
                return False
            raise ValueError(f"not a boolean: {raw!r}")
        if isinstance(default, int):
            return int(raw)
        if isinstance(default, float):
            return float(raw)
        return raw
    except ValueError as exc:
        raise ScenarioSpecError(
            f"bad value for {spec.name}?{key}: {exc}"
        ) from None


def parse_scenario(text: str | ScenarioSpec) -> ScenarioSpec:
    """Parse ``"name?param=value&..."`` into a canonical :class:`ScenarioSpec`.

    Aliases resolve to the canonical name, parameter values are coerced
    to the type of the transform's default, and parameters are sorted —
    so ``parse_scenario`` is a canonicalizer and
    ``parse_scenario(str(spec)) == spec`` holds for every parseable
    spec, matching the :mod:`repro.registry` convention.
    """
    if isinstance(text, ScenarioSpec):
        get_transform(text.name)  # validate
        return text
    name, _, query = text.strip().partition("?")
    if "+" in text:
        raise ScenarioSpecError(
            f"{text!r} is a composition; parse it with parse_composition"
        )
    spec = get_transform(name)
    params: dict[str, object] = {}
    if query:
        for part in query.split("&"):
            if not part:
                continue
            key, sep, raw = part.partition("=")
            if not sep:
                raise ScenarioSpecError(
                    f"malformed scenario spec {text!r}: expected "
                    f"param=value, got {part!r}"
                )
            params[key] = _coerce_value(spec, key, raw)
    return ScenarioSpec(name=spec.name, params=tuple(sorted(params.items())))


def bound_params(spec: ScenarioSpec) -> dict[str, object]:
    """The spec's full parameter dict: registered defaults + overrides."""
    transform = get_transform(spec.name)
    merged = dict(transform.defaults)
    for key, value in spec.params:
        if key not in transform.defaults:
            valid = ", ".join(sorted(transform.defaults)) or "<none>"
            raise ScenarioSpecError(
                f"scenario {spec.name!r} has no parameter {key!r}; "
                f"valid parameters: {valid}"
            )
        merged[key] = value
    return merged


def injection_window(spec) -> tuple[float, float] | None:
    """The spec's anomaly window as clipped run-time fractions.

    Accepts a spec string, a :class:`ScenarioSpec`, or a composition
    (anything with a ``specs`` tuple); a composition's window is the
    convex hull of its members' windows.  ``None`` means the scenario is
    stationary — no ground-truth window for detectors to hit.
    """
    specs = getattr(spec, "specs", None)
    if specs is not None:
        windows = [w for w in map(injection_window, specs) if w is not None]
        if not windows:
            return None
        return (min(w[0] for w in windows), max(w[1] for w in windows))
    parsed = parse_scenario(spec)
    transform = get_transform(parsed.name)
    if transform.window is None:
        return None
    window = transform.window(bound_params(parsed))
    if window is None:
        return None
    lo, hi = window
    lo = min(max(float(lo), 0.0), 1.0)
    hi = min(max(float(hi), 0.0), 1.0)
    return (lo, hi) if hi > lo else None
