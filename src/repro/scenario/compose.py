"""Composition: stack scenario transforms into one deterministic pipeline.

``compose("popularity-drift?strength=0.8", "flash-crowd")`` (or the
equivalent wire string ``"popularity-drift?strength=0.8+flash-crowd"``)
builds a :class:`Composition` applying the transforms **left to right**:
the second transform sees the trace the first one produced.  Transforms
are valid in any order, but composition is generally *not* commutative —
e.g. a flash crowd injected before a phase shift is itself remapped by
the shift, while one injected after is not (see ``docs/SCENARIOS.md``).

Determinism: each transform application draws from its own generator,
seeded with :func:`~repro.util.rng.stable_seed` of the composition seed,
the transform's position and its canonical spec string.  The same
composition string plus the same seed therefore yields a bit-identical
trace on every platform and interpreter run, and editing one transform's
parameters never perturbs another's random stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.log import get_logger
from repro.scenario.spec import (
    ScenarioSpec,
    ScenarioSpecError,
    bound_params,
    get_transform,
    parse_scenario,
)
from repro.util.rng import as_generator, stable_seed

slog = get_logger("repro.scenario")


@dataclass(frozen=True)
class Composition:
    """An ordered stack of scenario transforms (possibly just one).

    The string form joins the member specs with ``+`` and is accepted
    back by :func:`parse_composition` (round-trip canonical, like the
    single-spec wire format).
    """

    specs: tuple[ScenarioSpec, ...]

    def __str__(self) -> str:
        return "+".join(str(spec) for spec in self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def apply(self, trace, seed: int = 0):
        """Transform ``trace`` through every member spec, left to right.

        ``seed`` selects the composition's random world; the trace
        itself is never mutated (transforms build new traces).
        """
        for i, spec in enumerate(self.specs):
            transform = get_transform(spec.name)
            rng = as_generator(stable_seed("scenario", i, str(spec), seed))
            t0 = time.perf_counter()
            trace = transform.fn(trace, rng, **bound_params(spec))
            slog.debug(
                "scenario-applied",
                spec=str(spec),
                position=i,
                seed=seed,
                jobs=trace.n_jobs,
                accesses=trace.n_accesses,
                seconds=round(time.perf_counter() - t0, 4),
            )
        return trace


def parse_composition(text: str | ScenarioSpec | Composition) -> Composition:
    """Parse a ``"spec+spec+..."`` wire string into a :class:`Composition`.

    A single spec (string or :class:`ScenarioSpec`) becomes a one-element
    composition; an existing :class:`Composition` passes through after
    re-validation.  ``parse_composition(str(c)) == c`` holds, extending
    the single-spec canonicalizer guarantee to stacks.
    """
    if isinstance(text, Composition):
        for spec in text.specs:
            get_transform(spec.name)  # validate
        return text
    if isinstance(text, ScenarioSpec):
        return Composition(specs=(parse_scenario(text),))
    parts = [part.strip() for part in text.split("+")]
    if not parts or any(not part for part in parts):
        raise ScenarioSpecError(
            f"malformed composition {text!r}: empty member spec"
        )
    return Composition(specs=tuple(parse_scenario(part) for part in parts))


def compose(*items: "str | ScenarioSpec | Composition") -> Composition:
    """Stack any mix of spec strings, specs and compositions in order."""
    if not items:
        raise ValueError("compose() needs at least one scenario")
    specs: list[ScenarioSpec] = []
    for item in items:
        specs.extend(parse_composition(item).specs)
    return Composition(specs=tuple(specs))
