"""Streaming face of the scenario engine: transformed job-event streams.

The offline path (:meth:`Composition.apply <repro.scenario.compose.Composition.apply>`)
produces a trace; this module turns the same composition into the
*job-event stream* the service load generator replays — lazily, one
event at a time, in chronological order.  Events are the plain dicts
``repro-serve loadgen`` ships over the wire (``files``/``sizes``/
``site``), so the module stays below the service layer while feeding it.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.scenario.compose import Composition, parse_composition
from repro.scenario.spec import ScenarioSpec
from repro.traces.trace import Trace


def scenario_job_stream(
    trace: Trace,
    composition: "str | ScenarioSpec | Composition",
    seed: int = 0,
) -> Iterator[dict]:
    """Yield loadgen job events from the transformed trace, lazily.

    The composition is applied once up front (transforms are whole-trace
    rewrites — injection and remapping need the global time axis), then
    events stream in job order without materializing the full list:
    ``{"files": [...], "sizes": [...], "site": int, "start": float}``.
    ``start`` carries the trace timestamp so decay-aware consumers can
    drive their clock from trace time instead of arrival ticks.
    """
    transformed = parse_composition(composition).apply(trace, seed=seed)
    sites = transformed.job_sites
    sizes = transformed.file_sizes
    starts = transformed.job_starts
    for job_id, files in transformed.iter_jobs():
        file_list = files.tolist()
        yield {
            "files": file_list,
            "sizes": [int(sizes[f]) for f in file_list],
            "site": int(sites[job_id]),
            "start": float(starts[job_id]),
        }
